//===- Linker.cpp - Static linker ------------------------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "link/LinkOpt.h"
#include "link/Linker.h"

#include <algorithm>
#include <map>

using namespace ipra;

const ExeSymbol *Executable::symbolAt(int Pc) const {
  // Symbols are sorted by Start; binary search for the covering range.
  int Lo = 0, Hi = static_cast<int>(Symbols.size()) - 1;
  while (Lo <= Hi) {
    int Mid = (Lo + Hi) / 2;
    const ExeSymbol &S = Symbols[Mid];
    if (Pc < S.Start)
      Hi = Mid - 1;
    else if (Pc >= S.End)
      Lo = Mid + 1;
    else
      return &S;
  }
  return nullptr;
}

namespace {

struct MergedGlobal {
  int SizeWords = 0;
  std::vector<int32_t> Init;
  std::string FuncInit;
  bool HasInit = false;
  int Address = -1;
};

} // namespace

LinkResult ipra::linkObjects(const std::vector<ObjectFile> &Objects) {
  return linkObjects(Objects, {});
}

LinkResult ipra::linkObjects(
    const std::vector<ObjectFile> &Objects,
    const std::vector<std::pair<std::string, unsigned>> &StubLoads) {
  LinkResult Result;
  auto Error = [&Result](const std::string &Message) {
    Result.Errors.push_back(Message);
  };

  // Merge globals (common-symbol model).
  std::map<std::string, MergedGlobal> Globals;
  for (const ObjectFile &Obj : Objects) {
    for (const ObjGlobal &G : Obj.Globals) {
      MergedGlobal &M = Globals[G.QualName];
      if (M.SizeWords != 0 && M.SizeWords != G.SizeWords)
        Error("global '" + G.QualName + "' declared with different sizes (" +
              std::to_string(M.SizeWords) + " vs " +
              std::to_string(G.SizeWords) + ")");
      M.SizeWords = std::max(M.SizeWords, G.SizeWords);
      bool GHasInit = !G.Init.empty() || !G.FuncInit.empty();
      if (GHasInit) {
        if (M.HasInit)
          Error("global '" + G.QualName + "' initialized in more than one "
                "module");
        M.Init = G.Init;
        M.FuncInit = G.FuncInit;
        M.HasInit = true;
      }
    }
  }

  // Collect functions.
  std::map<std::string, const ObjFunction *> Functions;
  for (const ObjectFile &Obj : Objects) {
    for (const ObjFunction &F : Obj.Functions) {
      auto [It, Inserted] = Functions.try_emplace(F.QualName, &F);
      if (!Inserted)
        Error("function '" + F.QualName + "' defined in more than one "
              "module");
    }
  }
  if (!Functions.count("main"))
    Error("undefined entry point 'main'");
  if (!Result.Errors.empty())
    return Result;

  // Lay out data.
  int DataCursor = 0;
  for (auto &[Name, G] : Globals) {
    G.Address = DataCursor;
    DataCursor += G.SizeWords;
  }

  // Lay out code: startup stub then every function (main first for
  // readability; order is otherwise immaterial).
  Executable &Exe = Result.Exe;
  Exe.DataWords = DataCursor;

  std::map<std::string, int> FuncStart;
  // Stub: one initial-value load per link-time-promoted global, then
  // "BL main; HALT".
  int StubSize = static_cast<int>(StubLoads.size()) + 2;
  int CodeCursor = StubSize;
  auto Place = [&](const std::string &Name, const ObjFunction *F) {
    FuncStart[Name] = CodeCursor;
    CodeCursor += static_cast<int>(F->Code.size());
  };
  Place("main", Functions.at("main"));
  for (auto &[Name, F] : Functions)
    if (Name != "main")
      Place(Name, F);

  // Startup stub.
  {
    for (const auto &[Name, Reg] : StubLoads) {
      auto GIt = Globals.find(Name);
      if (GIt == Globals.end()) {
        Error("stub-load of undefined global '" + Name + "'");
        continue;
      }
      MInstr Ld;
      Ld.Op = MOp::LDW;
      Ld.MC = MemClass::GlobalScalar;
      Ld.A = MOperand::makeReg(Reg);
      Ld.B = MOperand::makeReg(0); // r0 == 0: absolute addressing.
      Ld.C = MOperand::makeImm(GIt->second.Address);
      Exe.Code.push_back(std::move(Ld));
    }
    MInstr Call;
    Call.Op = MOp::BL;
    Call.A = MOperand::makeImm(FuncStart.at("main"));
    Call.HasResult = true;
    Exe.Code.push_back(std::move(Call));
    MInstr Halt;
    Halt.Op = MOp::HALT;
    Exe.Code.push_back(std::move(Halt));
  }

  // Emit and patch each function.
  auto PatchOperand = [&](MOperand &Op, int FuncBase,
                          const std::string &InFunc) {
    if (Op.isLabel()) {
      Op = MOperand::makeImm(FuncBase + Op.LabelId);
      return;
    }
    if (!Op.isSym())
      return;
    // A symbol is either a function (code address) or a global (data
    // address).
    auto FIt = FuncStart.find(Op.SymName);
    if (FIt != FuncStart.end()) {
      Op = MOperand::makeImm(FIt->second);
      return;
    }
    auto GIt = Globals.find(Op.SymName);
    if (GIt != Globals.end()) {
      Op = MOperand::makeImm(GIt->second.Address);
      return;
    }
    Error("undefined symbol '" + Op.SymName + "' referenced from '" +
          InFunc + "'");
  };

  auto Emit = [&](const std::string &Name, const ObjFunction *F) {
    int Base = FuncStart.at(Name);
    for (const MInstr &Orig : F->Code) {
      MInstr I = Orig;
      PatchOperand(I.A, Base, Name);
      PatchOperand(I.B, Base, Name);
      PatchOperand(I.C, Base, Name);
      Exe.Code.push_back(std::move(I));
    }
    Exe.Symbols.push_back(
        ExeSymbol{Name, Base, Base + static_cast<int>(F->Code.size())});
  };
  Emit("main", Functions.at("main"));
  for (auto &[Name, F] : Functions)
    if (Name != "main")
      Emit(Name, F);
  std::sort(Exe.Symbols.begin(), Exe.Symbols.end(),
            [](const ExeSymbol &A, const ExeSymbol &B) {
              return A.Start < B.Start;
            });

  // Data image.
  Exe.DataInit.assign(Exe.DataWords, 0);
  for (auto &[Name, G] : Globals) {
    for (size_t W = 0; W < G.Init.size() &&
                       static_cast<int>(W) < G.SizeWords;
         ++W)
      Exe.DataInit[G.Address + W] = G.Init[W];
    if (!G.FuncInit.empty()) {
      auto FIt = FuncStart.find(G.FuncInit);
      if (FIt == FuncStart.end())
        Error("global '" + Name + "' initialized with unknown function '" +
              G.FuncInit + "'");
      else
        Exe.DataInit[G.Address] = FIt->second;
    }
  }

  Result.Success = Result.Errors.empty();
  return Result;
}
