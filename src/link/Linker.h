//===- Linker.h - Static linker --------------------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binds the object files of a program's modules into an executable
/// image: merges common globals, lays out code and data, resolves
/// symbolic operands, and prepends a startup stub (call main, halt).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_LINK_LINKER_H
#define IPRA_LINK_LINKER_H

#include "link/Object.h"

#include <string>
#include <vector>

namespace ipra {

/// Result of linking; on failure Errors explains every problem found.
struct LinkResult {
  bool Success = false;
  Executable Exe;
  std::vector<std::string> Errors;
};

/// Links \p Objects into an executable whose entry stub calls "main".
LinkResult linkObjects(const std::vector<ObjectFile> &Objects);

} // namespace ipra

#endif // IPRA_LINK_LINKER_H
