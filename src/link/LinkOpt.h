//===- LinkOpt.h - Link-time register allocation ([Wall 86]) ---*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §7.1 alternative to the two-pass scheme: "Most of the limitations
/// associated with a two-pass approach can be circumvented by deferring
/// interprocedural register allocation to link-time as described in
/// [Wall 86]. The linker would need to perform the job of the program
/// analyzer and implement interprocedural register allocation by
/// re-writing each module appropriately. Module re-writing may be
/// accompanied by certain local optimizations (e.g. peephole
/// optimization...)."
///
/// This pass rewrites already-compiled object files, with no database
/// and no recompilation:
///
///  1. scan every module for promotable scalar globals - one word,
///     never address-taken (no ADDRG result escapes into arithmetic,
///     stores, or calls), accessed only through the ADDRG/LDW/STW
///     idiom the compiler emits;
///  2. pick registers no function in the whole program touches (the
///     linker cannot re-color function bodies, so a dedicated register
///     must be globally free). Wall's compiler cooperated by reserving
///     a register bank up front; compileWallStyle replicates that with
///     LinkAllocOptions::ReserveBank. Without cooperation the scan
///     typically finds nothing free - the honest cost of retrofitting
///     link-time allocation onto a register-hungry compiler;
///  3. rewrite each access to a register move, then run a link-time
///     peephole: mask-based liveness deletes the address
///     materializations the rewrite left dead;
///  4. the startup stub loads each promoted global's initial value
///     before calling main (values live in registers for the entire
///     run, so no store-back exists anywhere).
///
/// Counts are static instruction counts - at link time there is no
/// loop hierarchy and no profile, which is exactly the fidelity gap the
/// paper's two-pass scheme closes over [Wall 86].
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_LINK_LINKOPT_H
#define IPRA_LINK_LINKOPT_H

#include "link/Linker.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ipra {

/// Tuning knobs for link-time allocation.
struct LinkAllocOptions {
  /// Promote at most this many globals (fewer if fewer registers are
  /// globally unused).
  int MaxGlobals = 8;
  /// [Wall 86] compiler cooperation: the bank the compiler reserved for
  /// the linker (compileWallStyle compiles every module with these
  /// registers excluded from allocation). The rewriter still VERIFIES
  /// each register is unused before dedicating it - the bank is a
  /// request, the scan is the proof. Defaults to the same six registers
  /// the two-pass configuration C reserves for webs, making the
  /// comparison apples-to-apples.
  RegMask ReserveBank = pr32::defaultWebColoringPool();
  /// Run the link-time peephole that deletes dead address
  /// materializations after rewriting.
  bool Peephole = true;
  /// Optional invocation counts per qualified procedure name, e.g.
  /// ProfileData::CallCounts from a profiling run ([Wall 86] used
  /// profiles too): access sites are weighted by the invocation count
  /// of the procedure containing them instead of counting 1 each.
  /// Non-owning; may be null.
  const std::map<std::string, long long> *InvocationCounts = nullptr;
};

/// What link-time allocation did, for tests and reporting.
struct LinkAllocStats {
  /// Globals promoted, with the dedicated register of each.
  std::vector<std::pair<std::string, unsigned>> Promoted;
  int CandidateGlobals = 0; ///< Promotable scalars found.
  int FreeRegisters = 0;    ///< Registers unused by every function.
  int RewrittenLoads = 0;
  int RewrittenStores = 0;
  int RemovedInstrs = 0; ///< Dead ADDRGs deleted by the peephole.
  /// A global-scalar access with an unknown base register was seen;
  /// promotion was abandoned entirely (cannot tell which global the
  /// access touches).
  bool OpaqueAccessSeen = false;
};

/// Rewrites \p Objects in place, promoting the most-referenced
/// promotable globals to globally-unused registers.
LinkAllocStats promoteGlobalsAtLinkTime(std::vector<ObjectFile> &Objects,
                                        const LinkAllocOptions &Options =
                                            LinkAllocOptions());

/// Links \p Objects with a startup stub that first loads each
/// (global, register) pair in \p StubLoads from the data image.
LinkResult
linkObjects(const std::vector<ObjectFile> &Objects,
            const std::vector<std::pair<std::string, unsigned>> &StubLoads);

/// Convenience: link-time allocation then linking, one call.
struct WallLinkResult {
  bool Success = false;
  Executable Exe;
  LinkAllocStats Stats;
  std::vector<std::string> Errors;
};
WallLinkResult linkObjectsWallStyle(std::vector<ObjectFile> Objects,
                                    const LinkAllocOptions &Options =
                                        LinkAllocOptions());

} // namespace ipra

#endif // IPRA_LINK_LINKOPT_H
