//===- ObjectIO.h - Object file serialization ------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual serialization of relocatable object files, so that the
/// compiler second phase's output is a real on-disk artifact like the
/// paper's per-module object files: the driver round-trips every object
/// through this format before linking, and mcc can emit/consume .o text
/// for true separate compilation.
///
/// Format (line oriented):
///
///   object <module>
///   global <qual> size=<n> [funcinit=<qual>]
///   init <w> <w> ...          ; appends to the last global
///   func <qual>
///   i <op>[.<cc>][/<mc>] <operand>* [args=<n>] [ret]
///   end                       ; closes the function
///
/// Operands: rN (register), #N (immediate), @sym (symbol), LN
/// (function-relative label). Frame operands never appear (frame
/// lowering resolves them before emission).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_LINK_OBJECTIO_H
#define IPRA_LINK_OBJECTIO_H

#include "link/Object.h"

#include <string>

namespace ipra {

/// Serializes \p Obj to the textual object format.
std::string writeObjectFile(const ObjectFile &Obj);

/// Parses an object file; returns false and fills \p Error on malformed
/// input.
bool readObjectFile(const std::string &Text, ObjectFile &Out,
                    std::string &Error);

} // namespace ipra

#endif // IPRA_LINK_OBJECTIO_H
