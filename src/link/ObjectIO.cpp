//===- ObjectIO.cpp - Object file serialization ----------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "link/ObjectIO.h"

#include "support/StringUtils.h"

#include <cstdlib>
#include <sstream>

using namespace ipra;

namespace {

const char *mcName(MemClass MC) {
  switch (MC) {
  case MemClass::None:
    return "none";
  case MemClass::StackScalar:
    return "stack";
  case MemClass::GlobalScalar:
    return "global";
  case MemClass::Element:
    return "elem";
  case MemClass::Indirect:
    return "ind";
  }
  return "none";
}

bool mcFromName(const std::string &Name, MemClass &Out) {
  if (Name == "none")
    Out = MemClass::None;
  else if (Name == "stack")
    Out = MemClass::StackScalar;
  else if (Name == "global")
    Out = MemClass::GlobalScalar;
  else if (Name == "elem")
    Out = MemClass::Element;
  else if (Name == "ind")
    Out = MemClass::Indirect;
  else
    return false;
  return true;
}

bool mopFromName(const std::string &Name, MOp &Out) {
  static const MOp All[] = {
      MOp::LDI, MOp::ADDRG, MOp::LDW, MOp::STW, MOp::MOV,   MOp::ADD,
      MOp::SUB, MOp::MUL,   MOp::DIV, MOp::REM, MOp::AND,   MOp::OR,
      MOp::XOR, MOp::SHL,   MOp::SHR, MOp::NEG, MOp::NOT,   MOp::CMP,
      MOp::CB,  MOp::B,     MOp::BL,  MOp::BLR, MOp::BV,    MOp::PRINT,
      MOp::PRINTC, MOp::HALT, MOp::NOP};
  for (MOp Op : All)
    if (Name == mopName(Op)) {
      Out = Op;
      return true;
    }
  return false;
}

bool condFromName(const std::string &Name, Cond &Out) {
  static const Cond All[] = {Cond::EQ, Cond::NE, Cond::LT,
                             Cond::LE, Cond::GT, Cond::GE};
  for (Cond CC : All)
    if (Name == condName(CC)) {
      Out = CC;
      return true;
    }
  return false;
}

std::string operandText(const MOperand &Op) {
  switch (Op.Kind) {
  case MOperand::None:
    return "";
  case MOperand::Reg:
    return "r" + std::to_string(Op.RegNo);
  case MOperand::Imm:
    return "#" + std::to_string(Op.ImmVal);
  case MOperand::Sym:
    return "@" + Op.SymName;
  case MOperand::Label:
    return "L" + std::to_string(Op.LabelId);
  case MOperand::Frame:
    return "fi" + std::to_string(Op.FrameIdx); // Should not be emitted.
  }
  return "";
}

bool operandFromText(const std::string &Text, MOperand &Out) {
  if (Text.empty())
    return false;
  if (Text[0] == 'r') {
    long long Reg = 0;
    if (!parseInt(Text.substr(1), Reg))
      return false;
    Out = MOperand::makeReg(static_cast<unsigned>(Reg));
    return true;
  }
  if (Text[0] == '#') {
    long long Imm = 0;
    if (!parseInt(Text.substr(1), Imm))
      return false;
    Out = MOperand::makeImm(static_cast<int32_t>(Imm));
    return true;
  }
  if (Text[0] == '@') {
    Out = MOperand::makeSym(Text.substr(1));
    return true;
  }
  if (Text[0] == 'L') {
    long long Label = 0;
    if (!parseInt(Text.substr(1), Label))
      return false;
    Out = MOperand::makeLabel(static_cast<int>(Label));
    return true;
  }
  return false;
}

std::string instrText(const MInstr &I) {
  std::ostringstream OS;
  OS << "i " << mopName(I.Op);
  if (I.Op == MOp::CMP || I.Op == MOp::CB)
    OS << "." << condName(I.CC);
  if (I.MC != MemClass::None)
    OS << "/" << mcName(I.MC);
  for (const MOperand *Op : {&I.A, &I.B, &I.C})
    if (Op->Kind != MOperand::None)
      OS << " " << operandText(*Op);
  if (I.isCall()) {
    OS << " args=" << unsigned(I.NumArgs);
    if (I.HasResult)
      OS << " ret";
  }
  return OS.str();
}

} // namespace

std::string ipra::writeObjectFile(const ObjectFile &Obj) {
  std::ostringstream OS;
  OS << "object " << Obj.Module << "\n";
  for (const ObjGlobal &G : Obj.Globals) {
    OS << "global " << G.QualName << " size=" << G.SizeWords;
    if (!G.FuncInit.empty())
      OS << " funcinit=" << G.FuncInit;
    OS << "\n";
    if (!G.Init.empty()) {
      for (size_t W = 0; W < G.Init.size(); W += 16) {
        OS << "init";
        for (size_t K = W; K < G.Init.size() && K < W + 16; ++K)
          OS << " " << G.Init[K];
        OS << "\n";
      }
    }
  }
  for (const ObjFunction &F : Obj.Functions) {
    OS << "func " << F.QualName << "\n";
    for (const MInstr &I : F.Code)
      OS << instrText(I) << "\n";
    OS << "end\n";
  }
  return OS.str();
}

bool ipra::readObjectFile(const std::string &Text, ObjectFile &Out,
                          std::string &Error) {
  Out = ObjectFile();
  ObjGlobal *CurGlobal = nullptr;
  ObjFunction *CurFunc = nullptr;
  int LineNo = 0;

  for (const std::string &RawLine : split(Text, '\n')) {
    ++LineNo;
    std::string Line = trim(RawLine);
    if (Line.empty())
      continue;
    std::vector<std::string> Tok = split(Line, ' ');
    auto Fail = [&](const std::string &Message) {
      Error = "line " + std::to_string(LineNo) + ": " + Message;
      return false;
    };

    if (Tok[0] == "object") {
      if (Tok.size() < 2)
        return Fail("malformed object header");
      Out.Module = Tok[1];
    } else if (Tok[0] == "global") {
      if (Tok.size() < 3)
        return Fail("malformed global record");
      ObjGlobal G;
      G.QualName = Tok[1];
      for (size_t T = 2; T < Tok.size(); ++T) {
        if (startsWith(Tok[T], "size=")) {
          long long Size = 0;
          parseInt(Tok[T].substr(5), Size);
          G.SizeWords = static_cast<int>(Size);
        } else if (startsWith(Tok[T], "funcinit=")) {
          G.FuncInit = Tok[T].substr(9);
        }
      }
      Out.Globals.push_back(std::move(G));
      CurGlobal = &Out.Globals.back();
      CurFunc = nullptr;
    } else if (Tok[0] == "init") {
      if (!CurGlobal)
        return Fail("'init' outside a global");
      for (size_t T = 1; T < Tok.size(); ++T) {
        long long W = 0;
        if (!parseInt(Tok[T], W))
          return Fail("bad init word '" + Tok[T] + "'");
        CurGlobal->Init.push_back(static_cast<int32_t>(W));
      }
    } else if (Tok[0] == "func") {
      if (Tok.size() < 2)
        return Fail("malformed func record");
      ObjFunction F;
      F.QualName = Tok[1];
      Out.Functions.push_back(std::move(F));
      CurFunc = &Out.Functions.back();
      CurGlobal = nullptr;
    } else if (Tok[0] == "i") {
      if (!CurFunc)
        return Fail("instruction outside a function");
      if (Tok.size() < 2)
        return Fail("missing opcode");
      MInstr I;
      // Opcode, optional .cc, optional /mc.
      std::string OpText = Tok[1];
      size_t Slash = OpText.find('/');
      if (Slash != std::string::npos) {
        MemClass MC;
        if (!mcFromName(OpText.substr(Slash + 1), MC))
          return Fail("bad memory class in '" + OpText + "'");
        I.MC = MC;
        OpText = OpText.substr(0, Slash);
      }
      size_t Dot = OpText.find('.');
      if (Dot != std::string::npos) {
        Cond CC;
        if (!condFromName(OpText.substr(Dot + 1), CC))
          return Fail("bad condition in '" + OpText + "'");
        I.CC = CC;
        OpText = OpText.substr(0, Dot);
      }
      if (!mopFromName(OpText, I.Op))
        return Fail("unknown opcode '" + OpText + "'");

      MOperand *Slots[3] = {&I.A, &I.B, &I.C};
      int NextOperand = 0;
      for (size_t T = 2; T < Tok.size(); ++T) {
        if (startsWith(Tok[T], "args=")) {
          long long N = 0;
          parseInt(Tok[T].substr(5), N);
          I.NumArgs = static_cast<uint8_t>(N);
        } else if (Tok[T] == "ret") {
          I.HasResult = true;
        } else {
          if (NextOperand >= 3)
            return Fail("too many operands");
          if (!operandFromText(Tok[T], *Slots[NextOperand++]))
            return Fail("bad operand '" + Tok[T] + "'");
        }
      }
      CurFunc->Code.push_back(std::move(I));
    } else if (Tok[0] == "end") {
      CurFunc = nullptr;
    } else {
      return Fail("unknown record '" + Tok[0] + "'");
    }
  }
  return true;
}
