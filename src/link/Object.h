//===- Object.h - Relocatable object format --------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relocatable object file the compiler second phase emits per
/// module, and the linked executable image. Code stays as structured
/// MInstr records; "relocation" means resolving Sym operands to absolute
/// data addresses / code indices and Label operands to absolute code
/// indices.
///
/// Symbol model (C-like):
///  - function and global names are global unless qualified
///    ("module:name"), which statics are;
///  - an uninitialized global is a common symbol: any number of modules
///    may declare it, they all merge into one definition;
///  - at most one module may initialize a given global;
///  - exactly one module must define each called function.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_LINK_OBJECT_H
#define IPRA_LINK_OBJECT_H

#include "target/MachineInstr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipra {

/// One compiled function: flattened machine code with function-relative
/// Label operands and symbolic Sym operands.
struct ObjFunction {
  std::string QualName;
  std::vector<MInstr> Code;
};

/// One global datum contributed by a module.
struct ObjGlobal {
  std::string QualName;
  int SizeWords = 1;
  std::vector<int32_t> Init; ///< Empty or shorter than size = zero-fill.
  std::string FuncInit;      ///< Non-empty: word 0 = address of function.
};

/// One module's compiled output.
struct ObjectFile {
  std::string Module;
  std::vector<ObjFunction> Functions;
  std::vector<ObjGlobal> Globals;
};

/// Symbol-table entry of the linked image, used by the simulator's
/// profiler to attribute cycles and calls to procedures.
struct ExeSymbol {
  std::string QualName;
  int Start = 0; ///< First instruction index.
  int End = 0;   ///< One past the last instruction.
};

/// A linked executable image.
struct Executable {
  std::vector<MInstr> Code;       ///< Entry at index 0 (startup stub).
  std::vector<int32_t> DataInit;  ///< Initial contents of the data segment.
  int DataWords = 0;              ///< Data segment size.
  int StackWords = 1 << 16;       ///< Stack region above the data segment.
  std::vector<ExeSymbol> Symbols; ///< Sorted by Start.

  int memoryWords() const { return DataWords + StackWords; }

  /// Returns the symbol covering instruction \p Pc, or null.
  const ExeSymbol *symbolAt(int Pc) const;
};

} // namespace ipra

#endif // IPRA_LINK_OBJECT_H
