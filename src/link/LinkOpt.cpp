//===- LinkOpt.cpp - Link-time register allocation ([Wall 86]) ------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "link/LinkOpt.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace ipra;

namespace {

/// What the whole-program scan learns about one global.
struct GlobalInfo {
  int SizeWords = 0;
  bool Escapes = false;   ///< Its address flows beyond a direct access.
  long long Accesses = 0; ///< Static LDW/STW count through its address.
};

/// Per-instruction register read/write masks for liveness. The mask
/// view is exact for straight-line code and conservative at calls: a
/// call's clobbers are NOT treated as defs (keeping values "live"
/// across calls deletes less, never more), and a return is treated as
/// reading every callee-saves register plus RV/RP/SP.
struct RegEffects {
  RegMask Uses = 0;
  RegMask Defs = 0;
};

RegEffects effectsOf(const MInstr &I) {
  RegEffects E;
  std::vector<unsigned> Regs;
  I.appendUses(Regs);
  for (unsigned R : Regs)
    E.Uses |= pr32::maskOf(R);
  Regs.clear();
  I.appendDefs(Regs);
  for (unsigned R : Regs)
    E.Defs |= pr32::maskOf(R);
  if (I.Op == MOp::BV)
    E.Uses |= pr32::calleeSavedMask() | pr32::maskOf(pr32::RV) |
              pr32::maskOf(pr32::RP) | pr32::maskOf(pr32::SP);
  return E;
}

/// Instruction successors within flattened function code (labels are
/// function-relative instruction indices in object files).
void appendSuccessors(const std::vector<MInstr> &Code, int I,
                      std::vector<int> &Out) {
  const MInstr &Instr = Code[I];
  switch (Instr.Op) {
  case MOp::B:
    Out.push_back(Instr.A.LabelId);
    return;
  case MOp::CB:
    Out.push_back(Instr.C.LabelId);
    Out.push_back(I + 1);
    return;
  case MOp::BV:
  case MOp::HALT:
    return;
  default:
    if (I + 1 < static_cast<int>(Code.size()))
      Out.push_back(I + 1);
    return;
  }
}

/// May-liveness over one function as 32-bit masks: LiveOut[i] is the
/// set of physical registers possibly read after instruction i executes.
std::vector<RegMask> computeLiveOut(const std::vector<MInstr> &Code) {
  int N = static_cast<int>(Code.size());
  std::vector<RegEffects> Effects(N);
  for (int I = 0; I < N; ++I)
    Effects[I] = effectsOf(Code[I]);

  std::vector<RegMask> LiveOut(N, 0);
  std::vector<int> Succs;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int I = N - 1; I >= 0; --I) {
      Succs.clear();
      appendSuccessors(Code, I, Succs);
      RegMask Out = 0;
      for (int S : Succs)
        if (S >= 0 && S < N)
          Out |= (LiveOut[S] & ~Effects[S].Defs) | Effects[S].Uses;
      if (Out != LiveOut[I]) {
        LiveOut[I] = Out;
        Changed = true;
      }
    }
  }
  return LiveOut;
}

/// Address-fact dataflow over one function. For every program point it
/// tracks which physical registers hold the address of which global:
///
///  - MUST facts (register definitely holds &G) identify the clean
///    direct accesses that may be counted and rewritten;
///  - MAY facts (register possibly holds &G, union over paths) identify
///    escapes - any use of a possibly-address register outside the
///    LDW/STW-base position poisons the global.
///
/// The split matters because the level-2 optimizer hoists invariant
/// ADDRGs out of loops: the materialization and its uses then live in
/// different blocks, and a block-local scan would silently miss both
/// the accesses and the escapes (the latter being a miscompile).
class AddressScan {
public:
  struct Facts {
    std::map<unsigned, std::string> Must;
    std::map<unsigned, std::set<std::string>> May;

    bool operator==(const Facts &O) const {
      return Must == O.Must && May == O.May;
    }
  };

  explicit AddressScan(const std::vector<MInstr> &Code) : Code(Code) {
    buildBlocks();
    runToFixpoint();
  }

  /// Replays the transfer function invoking the callbacks with settled
  /// facts. Access(G, Idx) fires on clean accesses, Escape(G) on
  /// address escapes, Opaque() on a global-scalar access whose base is
  /// a complete mystery.
  template <typename OnAccess, typename OnEscape, typename OnOpaque>
  void visit(OnAccess Access, OnEscape Escape, OnOpaque Opaque) const {
    for (size_t B = 0; B < Blocks.size(); ++B) {
      Facts F = In[B];
      for (int I = Blocks[B].first; I < Blocks[B].second; ++I)
        step(F, I, Access, Escape, Opaque);
    }
  }

private:
  const std::vector<MInstr> &Code;
  std::vector<std::pair<int, int>> Blocks; ///< [begin, end) per block.
  std::vector<int> BlockOf;                ///< Instruction -> block id.
  std::vector<Facts> In;

  void buildBlocks() {
    int N = static_cast<int>(Code.size());
    Seeded.clear();
    std::vector<bool> Leader(N, false);
    if (N > 0)
      Leader[0] = true;
    for (int I = 0; I < N; ++I) {
      const MInstr &Instr = Code[I];
      for (const MOperand *Op : {&Instr.A, &Instr.B, &Instr.C})
        if (Op->isLabel() && Op->LabelId >= 0 && Op->LabelId < N)
          Leader[Op->LabelId] = true;
      if (Instr.isBranch() || Instr.Op == MOp::HALT)
        if (I + 1 < N)
          Leader[I + 1] = true;
    }
    BlockOf.assign(N, 0);
    for (int I = 0; I < N; ++I) {
      if (Leader[I])
        Blocks.push_back({I, I + 1});
      else
        Blocks.back().second = I + 1;
      BlockOf[I] = static_cast<int>(Blocks.size()) - 1;
    }
    In.assign(Blocks.size(), Facts());
    Seeded.assign(Blocks.size(), false);
    if (!Seeded.empty())
      Seeded[0] = true; // Entry: no register holds an address.
  }

  /// MUST meets by agreement, MAY by union.
  static void meetInto(Facts &Into, const Facts &From, bool First) {
    if (First) {
      Into = From;
      return;
    }
    for (auto It = Into.Must.begin(); It != Into.Must.end();) {
      auto FIt = From.Must.find(It->first);
      It = (FIt == From.Must.end() || FIt->second != It->second)
               ? Into.Must.erase(It)
               : std::next(It);
    }
    for (const auto &[R, Gs] : From.May)
      Into.May[R].insert(Gs.begin(), Gs.end());
  }

  template <typename OnAccess, typename OnEscape, typename OnOpaque>
  void step(Facts &F, int Idx, OnAccess Access, OnEscape Escape,
            OnOpaque Opaque) const {
    const MInstr &I = Code[Idx];
    std::vector<unsigned> Regs;

    // Clean base position of a direct access?
    bool CleanBase = false;
    if ((I.Op == MOp::LDW || I.Op == MOp::STW) && I.B.isReg() &&
        I.C.isImm() && I.C.ImmVal == 0) {
      auto MIt = F.Must.find(I.B.RegNo);
      if (MIt != F.Must.end()) {
        Access(MIt->second, Idx);
        CleanBase = true;
      } else if (I.MC == MemClass::GlobalScalar) {
        auto AIt = F.May.find(I.B.RegNo);
        if (AIt != F.May.end())
          for (const std::string &G : AIt->second)
            Escape(G);
        else
          Opaque();
      }
    } else if ((I.Op == MOp::LDW || I.Op == MOp::STW) &&
               I.MC == MemClass::GlobalScalar) {
      Opaque();
    }

    // Every other use of a possibly-address register escapes it.
    I.appendUses(Regs);
    for (unsigned R : Regs) {
      if (CleanBase && I.B.isReg() && R == I.B.RegNo)
        continue;
      auto AIt = F.May.find(R);
      if (AIt != F.May.end())
        for (const std::string &G : AIt->second)
          Escape(G);
    }

    // Kills: calls clobber, defs overwrite.
    if (I.isCall()) {
      for (auto It = F.Must.begin(); It != F.Must.end();)
        It = (pr32::callClobberMask() & pr32::maskOf(It->first))
                 ? F.Must.erase(It)
                 : std::next(It);
      for (auto It = F.May.begin(); It != F.May.end();)
        It = (pr32::callClobberMask() & pr32::maskOf(It->first))
                 ? F.May.erase(It)
                 : std::next(It);
    }
    Regs.clear();
    I.appendDefs(Regs);
    for (unsigned R : Regs) {
      F.Must.erase(R);
      F.May.erase(R);
    }

    // Gen: a new address materialization.
    if (I.Op == MOp::ADDRG && I.A.isReg() && I.B.isSym()) {
      F.Must[I.A.RegNo] = I.B.SymName;
      F.May[I.A.RegNo] = {I.B.SymName};
    }
  }

  void runToFixpoint() {
    if (Blocks.empty())
      return;
    auto Nop1 = [](const std::string &, int) {};
    auto Nop2 = [](const std::string &) {};
    auto Nop3 = []() {};
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t B = 0; B < Blocks.size(); ++B) {
        Facts F = In[B];
        for (int I = Blocks[B].first; I < Blocks[B].second; ++I)
          step(F, I, Nop1, Nop2, Nop3);
        std::vector<int> Succs;
        appendSuccessors(Code, Blocks[B].second - 1, Succs);
        for (int S : Succs) {
          if (S < 0 || S >= static_cast<int>(Code.size()))
            continue;
          size_t SB = BlockOf[S];
          Facts Met = In[SB];
          // A successor whose entry facts were never set yet takes the
          // incoming facts wholesale; afterwards it only loses MUST
          // facts and gains MAY facts, so the fixpoint terminates.
          meetInto(Met, F, /*First=*/!Seeded[SB]);
          if (!Seeded[SB] || !(Met == In[SB])) {
            In[SB] = std::move(Met);
            Seeded[SB] = true;
            Changed = true;
          }
        }
      }
    }
  }

  /// Whether a block's entry facts have been computed at least once
  /// (an unseeded successor adopts incoming facts wholesale).
  std::vector<bool> Seeded;
};

} // namespace

LinkAllocStats
ipra::promoteGlobalsAtLinkTime(std::vector<ObjectFile> &Objects,
                               const LinkAllocOptions &Options) {
  LinkAllocStats Stats;

  // --- Whole-program scan -----------------------------------------------
  std::map<std::string, GlobalInfo> Globals;
  for (const ObjectFile &Obj : Objects)
    for (const ObjGlobal &G : Obj.Globals) {
      GlobalInfo &Info = Globals[G.QualName];
      Info.SizeWords = std::max(Info.SizeWords, G.SizeWords);
    }

  RegMask UsedAnywhere = 0;
  for (const ObjectFile &Obj : Objects)
    for (const ObjFunction &F : Obj.Functions) {
      for (const MInstr &I : F.Code)
        for (const MOperand *Op : {&I.A, &I.B, &I.C})
          if (Op->isReg())
            UsedAnywhere |= pr32::maskOf(Op->RegNo);
      // Static site counts, or profile-weighted site counts when a
      // profile is supplied (the procedure's invocation count stands in
      // for per-site frequencies the linker cannot see).
      long long Weight = 1;
      if (Options.InvocationCounts) {
        auto PIt = Options.InvocationCounts->find(F.QualName);
        if (PIt != Options.InvocationCounts->end())
          Weight = std::max<long long>(1, PIt->second);
      }
      AddressScan Scan(F.Code);
      Scan.visit(
          [&](const std::string &G, int) {
            auto It = Globals.find(G);
            if (It != Globals.end())
              It->second.Accesses += Weight;
          },
          [&](const std::string &G) {
            auto It = Globals.find(G);
            if (It != Globals.end())
              It->second.Escapes = true;
          },
          [&]() { Stats.OpaqueAccessSeen = true; });
    }

  // An access whose global cannot be identified could touch anything:
  // promotion is abandoned (sound, and in practice unreachable - the
  // compiler emits each address immediately before its only use).
  if (Stats.OpaqueAccessSeen)
    return Stats;

  // --- Register selection -------------------------------------------------
  // Only registers no function touches can hold a whole-program value;
  // the hardwired/linkage registers are never eligible.
  RegMask Reserved = UsedAnywhere | pr32::maskOf(pr32::Zero) |
                     pr32::maskOf(pr32::AT) | pr32::maskOf(pr32::RP) |
                     pr32::maskOf(pr32::RV) | pr32::maskOf(pr32::SP) |
                     pr32::argRegMask();
  std::vector<unsigned> FreeRegs;
  for (unsigned R = pr32::LastCalleeSaved;; --R) {
    // Callee-saves from the top down, then leftover caller-saves.
    if (!(Reserved & pr32::maskOf(R)))
      FreeRegs.push_back(R);
    if (R == pr32::FirstCalleeSaved)
      break;
  }
  for (unsigned R = 19; R < pr32::NumRegs; ++R)
    if (!(Reserved & pr32::maskOf(R)))
      FreeRegs.push_back(R);
  Stats.FreeRegisters = static_cast<int>(FreeRegs.size());

  // --- Candidate ranking ---------------------------------------------------
  std::vector<std::pair<std::string, const GlobalInfo *>> Candidates;
  for (const auto &[Name, Info] : Globals)
    if (Info.SizeWords == 1 && !Info.Escapes && Info.Accesses > 0)
      Candidates.push_back({Name, &Info});
  Stats.CandidateGlobals = static_cast<int>(Candidates.size());
  std::sort(Candidates.begin(), Candidates.end(),
            [](const auto &A, const auto &B) {
              if (A.second->Accesses != B.second->Accesses)
                return A.second->Accesses > B.second->Accesses;
              return A.first < B.first;
            });

  std::map<std::string, unsigned> RegOf;
  for (const auto &[Name, Info] : Candidates) {
    if (RegOf.size() >= static_cast<size_t>(Options.MaxGlobals) ||
        RegOf.size() >= FreeRegs.size())
      break;
    unsigned Reg = FreeRegs[RegOf.size()];
    RegOf[Name] = Reg;
    Stats.Promoted.push_back({Name, Reg});
  }
  if (RegOf.empty())
    return Stats;

  // --- Rewrite --------------------------------------------------------------
  for (ObjectFile &Obj : Objects)
    for (ObjFunction &F : Obj.Functions) {
      // First collect the rewrites (indices are stable), then apply.
      std::vector<std::pair<int, std::string>> Hits;
      AddressScan Scan(F.Code);
      Scan.visit(
          [&](const std::string &G, int Idx) {
            if (RegOf.count(G))
              Hits.push_back({Idx, G});
          },
          [](const std::string &) {}, []() {});
      for (const auto &[Idx, G] : Hits) {
        MInstr &I = F.Code[Idx];
        unsigned Rg = RegOf.at(G);
        if (I.Op == MOp::LDW) {
          unsigned Dst = I.A.RegNo;
          I = MInstr();
          I.Op = MOp::MOV;
          I.A = MOperand::makeReg(Dst);
          I.B = MOperand::makeReg(Rg);
          ++Stats.RewrittenLoads;
        } else {
          unsigned Src = I.A.RegNo;
          I = MInstr();
          I.Op = MOp::MOV;
          I.A = MOperand::makeReg(Rg);
          I.B = MOperand::makeReg(Src);
          ++Stats.RewrittenStores;
        }
      }

      if (!Options.Peephole)
        continue;

      // Link-time peephole: the rewrites leave ADDRGs of promoted
      // globals computing addresses nobody reads. Mask-based liveness
      // proves which are dead; deleting them shifts branch targets, so
      // label operands are remapped through the kept-prefix counts.
      std::vector<RegMask> LiveOut = computeLiveOut(F.Code);
      int N = static_cast<int>(F.Code.size());
      std::vector<bool> Keep(N, true);
      for (int I = 0; I < N; ++I) {
        const MInstr &Instr = F.Code[I];
        if (Instr.Op == MOp::ADDRG && Instr.B.isSym() &&
            RegOf.count(Instr.B.SymName) && Instr.A.isReg() &&
            !(LiveOut[I] & pr32::maskOf(Instr.A.RegNo))) {
          Keep[I] = false;
          ++Stats.RemovedInstrs;
        }
      }
      std::vector<int> NewIndex(N + 1, 0);
      for (int I = 0; I < N; ++I)
        NewIndex[I + 1] = NewIndex[I] + (Keep[I] ? 1 : 0);
      std::vector<MInstr> Kept;
      Kept.reserve(NewIndex[N]);
      for (int I = 0; I < N; ++I) {
        if (!Keep[I])
          continue;
        MInstr Instr = std::move(F.Code[I]);
        for (MOperand *Op : {&Instr.A, &Instr.B, &Instr.C})
          if (Op->isLabel() && Op->LabelId >= 0 && Op->LabelId <= N)
            Op->LabelId = NewIndex[Op->LabelId];
        Kept.push_back(std::move(Instr));
      }
      F.Code = std::move(Kept);
    }
  return Stats;
}

WallLinkResult ipra::linkObjectsWallStyle(std::vector<ObjectFile> Objects,
                                          const LinkAllocOptions &Options) {
  WallLinkResult Result;
  Result.Stats = promoteGlobalsAtLinkTime(Objects, Options);
  LinkResult Linked = linkObjects(Objects, Result.Stats.Promoted);
  Result.Errors = Linked.Errors;
  if (!Linked.Success)
    return Result;
  Result.Exe = std::move(Linked.Exe);
  Result.Success = true;
  return Result;
}
