//===- BuildService.cpp - Long-lived IPRA build service -------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "service/BuildService.h"

#include "support/ThreadPool.h"

using namespace ipra;

json::Value BuildServiceStats::toJson() const {
  using json::Value;
  Value V = Value::object();
  V.set("accepted", Value::number(Accepted))
      .set("completed", Value::number(Completed))
      .set("failed", Value::number(Failed))
      .set("rejected-busy", Value::number(RejectedBusy))
      .set("rejected-shutdown", Value::number(RejectedShutdown))
      .set("coalesced", Value::number(Coalesced))
      .set("queue-depth", Value::number(QueueDepth))
      .set("peak-queue-depth", Value::number(PeakQueueDepth))
      .set("workers", Value::number(Workers))
      .set("programs", Value::number(Programs))
      .set("pipelines", Value::number(Pipelines))
      .set("analyzer-runs", Value::number(AnalyzerRuns))
      .set("delta-hits", Value::number(DeltaHits))
      .set("full-runs", Value::number(FullRuns))
      .set("requests", Value::number(Requests))
      .set("total-ms-sum", Value::number(TotalMsSum))
      .set("phase1-ms-sum", Value::number(Phase1MsSum))
      .set("analyzer-ms-sum", Value::number(AnalyzerMsSum))
      .set("phase2-ms-sum", Value::number(Phase2MsSum))
      .set("link-ms-sum", Value::number(LinkMsSum));
  Value C = Value::object();
  C.set("mem-hits", Value::number(Cache.MemHits))
      .set("disk-hits", Value::number(Cache.DiskHits))
      .set("misses", Value::number(Cache.Misses))
      .set("bytes-read", Value::number(Cache.BytesRead))
      .set("bytes-written", Value::number(Cache.BytesWritten))
      .set("interned-values", Value::number(Cache.InternedValues))
      .set("intern-hits", Value::number(Cache.InternHits))
      .set("intern-bytes-saved", Value::number(Cache.InternBytesSaved));
  V.set("cache", std::move(C));
  return V;
}

BuildService::BuildService(BuildServiceConfig Config_)
    : Config(Config_),
      Cache(std::make_shared<ArtifactCache>(Config_.CacheDir)) {
  unsigned N = Config.Workers ? Config.Workers
                              : resolveThreadCount(0);
  Config.Workers = N;
  WorkerThreads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
}

BuildService::~BuildService() { shutdown(); }

std::shared_ptr<BuildService::ProgramState>
BuildService::programFor(const std::string &Program) {
  std::lock_guard<std::mutex> Lock(ProgramsMutex);
  auto &Slot = Programs[Program];
  if (!Slot)
    Slot = std::make_shared<ProgramState>();
  return Slot;
}

std::shared_ptr<Pipeline>
BuildService::pipelineFor(ProgramState &PS, const PipelineConfig &Config_) {
  std::string Key = Config_.fingerprint();
  std::lock_guard<std::mutex> Lock(PS.MapMutex);
  auto It = PS.Entries.find(Key);
  if (It != PS.Entries.end())
    return It->second.Pipe;
  // The service owns cache placement and always retains delta state;
  // everything else comes from the request so a config flip creates a
  // correctly-fingerprinted sibling entry.
  PipelineConfig Effective = Config_;
  Effective.CacheDir.clear(); // The shared cache is injected below.
  Effective.DeltaAnalysis = true;
  ProgramState::Entry E;
  E.Session = std::make_shared<AnalyzerSession>();
  E.Pipe = std::make_shared<Pipeline>(Effective, Cache, E.Session);
  PS.Entries.emplace(Key, E);
  return E.Pipe;
}

Result<BuildResponse> BuildService::handle(const BuildRequest &Req) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.RejectedShutdown;
      return Result<BuildResponse>::failure(
          "build service is shutting down", "shutdown");
    }
  }
  return run(Req);
}

Result<BuildResponse> BuildService::run(const BuildRequest &Req) {
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    ++Counters.Accepted;
  }

  std::shared_ptr<ProgramState> PS = programFor(Req.Program);
  std::shared_ptr<Pipeline> Pipe = pipelineFor(*PS, Req.Config);

  // Same-program requests coalesce here: they serialize onto the one
  // retained delta state, so concurrent edits produce byte-identical
  // databases to running them one after the other.
  std::unique_lock<std::mutex> BuildLock(PS->BuildMutex, std::try_to_lock);
  if (!BuildLock.owns_lock()) {
    {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.Coalesced;
    }
    BuildLock.lock();
  }
  Result<BuildResponse> R = Pipe->execute(Req);
  BuildLock.unlock();

  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    if (R.ok())
      ++Counters.Completed;
    else
      ++Counters.Failed;
    ++Counters.Requests;
    Counters.TotalMsSum += R.Value.Stats.TotalMs;
    Counters.Phase1MsSum += R.Value.Stats.Phase1Ms;
    Counters.AnalyzerMsSum += R.Value.Stats.AnalyzerMs;
    Counters.Phase2MsSum += R.Value.Stats.Phase2Ms;
    Counters.LinkMsSum += R.Value.Stats.LinkMs;
  }
  return R;
}

std::future<Result<BuildResponse>> BuildService::enqueue(BuildRequest Req) {
  std::promise<Result<BuildResponse>> Done;
  std::future<Result<BuildResponse>> Fut = Done.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.RejectedShutdown;
      Done.set_value(Result<BuildResponse>::failure(
          "build service is shutting down", "shutdown"));
      return Fut;
    }
    if (Queue.size() >= Config.MaxQueueDepth) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Counters.RejectedBusy;
      Done.set_value(Result<BuildResponse>::failure(
          "build service queue is full (" +
              std::to_string(Config.MaxQueueDepth) + " requests); retry",
          "busy"));
      return Fut;
    }
    Queue.push_back(Job{std::move(Req), std::move(Done)});
    std::lock_guard<std::mutex> SLock(StatsMutex);
    Counters.QueueDepth = Queue.size();
    if (Queue.size() > Counters.PeakQueueDepth)
      Counters.PeakQueueDepth = Queue.size();
  }
  QueueCV.notify_one();
  return Fut;
}

void BuildService::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [this] { return Draining || !Queue.empty(); });
      if (Queue.empty())
        return; // Draining and drained.
      J = std::move(Queue.front());
      Queue.pop_front();
      std::lock_guard<std::mutex> SLock(StatsMutex);
      Counters.QueueDepth = Queue.size();
    }
    // run(), not handle(): a job admitted before a drain began must
    // still complete even if Draining flips while it waits.
    J.Done.set_value(run(J.Req));
  }
}

void BuildService::shutdown() {
  // Graceful drain: stop admitting (handle/enqueue answer "shutdown"
  // from here on), take over whatever is still queued, let in-flight
  // workers finish and join them, then complete the admitted backlog on
  // this thread so every accepted future resolves with a real result.
  std::deque<Job> Admitted;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining && WorkerThreads.empty())
      return;
    Draining = true;
    Admitted.swap(Queue);
  }
  QueueCV.notify_all();
  std::vector<std::thread> Workers;
  Workers.swap(WorkerThreads);
  for (std::thread &T : Workers)
    T.join();
  for (Job &J : Admitted)
    J.Done.set_value(run(J.Req));
}

BuildServiceStats BuildService::stats() const {
  BuildServiceStats Out;
  {
    std::lock_guard<std::mutex> SLock(StatsMutex);
    Out = Counters;
  }
  Out.Workers = Config.Workers;
  {
    std::lock_guard<std::mutex> Lock(ProgramsMutex);
    Out.Programs = Programs.size();
    Out.Pipelines = 0;
    Out.AnalyzerRuns = Out.DeltaHits = Out.FullRuns = 0;
    for (const auto &[Name, PS] : Programs) {
      std::lock_guard<std::mutex> MapLock(PS->MapMutex);
      Out.Pipelines += PS->Entries.size();
      for (const auto &[FP, E] : PS->Entries) {
        AnalyzerSessionCounters C = E.Session->counters();
        Out.AnalyzerRuns += C.Analyses;
        Out.DeltaHits += C.DeltaRuns;
        Out.FullRuns += C.FullRuns;
      }
    }
  }
  Out.Cache = Cache->stats();
  return Out;
}
