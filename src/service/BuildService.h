//===- BuildService.h - Long-lived IPRA build service ----------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived build service behind `mcc --serve`: a BuildService
/// keeps the expensive pipeline state hot across requests instead of
/// rebuilding it per process —
///
///  - one shared, sharded, content-interning ArtifactCache across every
///    program it serves (summaries/databases/objects; the interned
///    store collapses identical artifacts, e.g. the runtime module's
///    summary, to one resident copy);
///  - one AnalyzerSession per (program, configuration): the retained
///    delta-analysis state, so an edit to a served program re-analyzes
///    only its SCC damage region on the next request;
///  - one Pipeline per (program, configuration fingerprint), rebuilt
///    lazily and cheaply because the heavy state lives in the two
///    objects above.
///
/// Concurrency model: requests for different programs run in parallel
/// on the worker pool; concurrent requests for the same program
/// coalesce — they serialize on the program's build mutex onto the one
/// retained delta state, so the artifacts are byte-identical to running
/// them sequentially. Admission control bounds the queue: past
/// MaxQueueDepth, enqueue() answers immediately with status code
/// "busy" (backpressure, the client retries) instead of growing an
/// unbounded backlog. Shutdown is graceful: draining rejects new work
/// with code "shutdown" while every admitted request still completes.
///
/// The same object serves three transports: in-process calls (handle /
/// enqueue), the mcc CLI, and the socket daemon (Daemon.h) — all speak
/// BuildRequest/BuildResponse.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SERVICE_BUILDSERVICE_H
#define IPRA_SERVICE_BUILDSERVICE_H

#include "core/AnalyzerSession.h"
#include "driver/ArtifactCache.h"
#include "driver/BuildRequest.h"
#include "driver/Pipeline.h"
#include "support/Json.h"
#include "support/Status.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ipra {

struct BuildServiceConfig {
  /// Worker threads draining the request queue. 0 defers to
  /// IPRA_THREADS / the hardware count (support/ThreadPool.h).
  unsigned Workers = 0;
  /// Admission control: requests queued beyond this bound are rejected
  /// with status code "busy" instead of waiting.
  size_t MaxQueueDepth = 256;
  /// Disk directory for the shared artifact cache; empty keeps the
  /// cache memory-only.
  std::string CacheDir;
};

/// One snapshot of the service's observable state (the "stats" wire
/// request renders this as JSON).
struct BuildServiceStats {
  // Admission / completion accounting.
  unsigned long long Accepted = 0;  ///< Requests admitted for execution.
  unsigned long long Completed = 0; ///< Finished with Ok status.
  unsigned long long Failed = 0;    ///< Finished with a failure status.
  unsigned long long RejectedBusy = 0;     ///< Bounced by backpressure.
  unsigned long long RejectedShutdown = 0; ///< Bounced while draining.
  /// Requests that found their program's build lock held and waited
  /// (same-program coalescing onto the retained state).
  unsigned long long Coalesced = 0;
  size_t QueueDepth = 0;     ///< Queued, not yet executing.
  size_t PeakQueueDepth = 0; ///< High-water mark since startup.
  unsigned Workers = 0;
  // Retained-state accounting.
  size_t Programs = 0;  ///< Distinct program ids seen.
  size_t Pipelines = 0; ///< Retained (program, config) pipelines.
  unsigned long long AnalyzerRuns = 0; ///< Session analyze() calls.
  unsigned long long DeltaHits = 0;    ///< ... that took the delta path.
  unsigned long long FullRuns = 0;     ///< ... that ran cold.
  // Request-level per-phase latency sums (milliseconds), over completed
  // requests; divide by Completed+Failed for means. Per-request values
  // ride in each BuildResponse::Stats.
  unsigned long long Requests = 0;
  double TotalMsSum = 0;
  double Phase1MsSum = 0;
  double AnalyzerMsSum = 0;
  double Phase2MsSum = 0;
  double LinkMsSum = 0;
  ArtifactCacheStats Cache;

  /// Renders the snapshot as a JSON object (stable kebab-case keys).
  json::Value toJson() const;
};

/// The long-lived build service. Thread-safe; one instance serves
/// arbitrarily many concurrent callers.
class BuildService {
public:
  explicit BuildService(BuildServiceConfig Config = BuildServiceConfig());
  ~BuildService(); ///< Graceful: drains admitted work, joins workers.

  BuildService(const BuildService &) = delete;
  BuildService &operator=(const BuildService &) = delete;

  /// Executes \p Req synchronously on the calling thread (the workers
  /// funnel through here too). Serializes with other requests for the
  /// same program; runs in parallel with other programs. Fails with
  /// code "shutdown" while draining.
  Result<BuildResponse> handle(const BuildRequest &Req);

  /// Queues \p Req for a worker. The future is immediately ready with
  /// code "busy" when the queue is at MaxQueueDepth, and with code
  /// "shutdown" while draining.
  std::future<Result<BuildResponse>> enqueue(BuildRequest Req);

  /// Stops admitting work (handle and enqueue fail with "shutdown"),
  /// drains every admitted request, and joins the workers. Idempotent.
  void shutdown();

  BuildServiceStats stats() const;
  ArtifactCache &cache() { return *Cache; }
  const BuildServiceConfig &config() const { return Config; }

private:
  /// Per-program retained state: the build lock requests coalesce on,
  /// plus the per-configuration pipelines and analyzer sessions.
  struct ProgramState {
    std::mutex BuildMutex;
    std::mutex MapMutex; ///< Guards Entries only.
    struct Entry {
      std::shared_ptr<Pipeline> Pipe;
      std::shared_ptr<AnalyzerSession> Session;
    };
    /// Keyed by PipelineConfig::fingerprint(); NumThreads / CacheDir /
    /// DeltaAnalysis do not fingerprint, so requests differing only in
    /// those share one retained state (their artifacts are identical).
    std::map<std::string, Entry> Entries;
  };

  std::shared_ptr<ProgramState> programFor(const std::string &Program);
  std::shared_ptr<Pipeline> pipelineFor(ProgramState &PS,
                                        const PipelineConfig &Config);
  /// handle() minus the admission check: executes unconditionally.
  /// Workers and the shutdown drain use it so work admitted before a
  /// drain began still completes.
  Result<BuildResponse> run(const BuildRequest &Req);
  void workerLoop();

  BuildServiceConfig Config;
  std::shared_ptr<ArtifactCache> Cache;

  mutable std::mutex ProgramsMutex;
  std::map<std::string, std::shared_ptr<ProgramState>> Programs;

  struct Job {
    BuildRequest Req;
    std::promise<Result<BuildResponse>> Done;
  };
  mutable std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<Job> Queue;
  bool Draining = false;
  std::vector<std::thread> WorkerThreads;

  // Counters. Guarded by StatsMutex (latency sums are doubles, and a
  // snapshot must be coherent).
  mutable std::mutex StatsMutex;
  BuildServiceStats Counters;
};

} // namespace ipra

#endif // IPRA_SERVICE_BUILDSERVICE_H
