//===- Protocol.cpp - Build-service wire protocol -------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cerrno>
#include <cstdint>
#include <unistd.h>

using namespace ipra;
using json::Value;

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

namespace {

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool readAll(int Fd, char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::read(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF mid-frame (or before one): no frame.
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool ipra::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  char Header[4] = {static_cast<char>((Len >> 24) & 0xff),
                    static_cast<char>((Len >> 16) & 0xff),
                    static_cast<char>((Len >> 8) & 0xff),
                    static_cast<char>(Len & 0xff)};
  return writeAll(Fd, Header, 4) &&
         writeAll(Fd, Payload.data(), Payload.size());
}

bool ipra::readFrame(int Fd, std::string &Payload) {
  char Header[4];
  if (!readAll(Fd, Header, 4))
    return false;
  uint32_t Len = (static_cast<uint32_t>(static_cast<unsigned char>(Header[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(Header[3]));
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || readAll(Fd, Payload.data(), Len);
}

//===----------------------------------------------------------------------===//
// Config codec.
//===----------------------------------------------------------------------===//

namespace {

const char *promotionName(PromotionMode M) {
  switch (M) {
  case PromotionMode::None:
    return "none";
  case PromotionMode::Webs:
    return "webs";
  case PromotionMode::Greedy:
    return "greedy";
  case PromotionMode::Blanket:
    return "blanket";
  }
  return "none";
}

PromotionMode promotionFromName(const std::string &Name) {
  if (Name == "webs")
    return PromotionMode::Webs;
  if (Name == "greedy")
    return PromotionMode::Greedy;
  if (Name == "blanket")
    return PromotionMode::Blanket;
  return PromotionMode::None;
}

bool fieldBool(const Value &V, const char *Key, bool Default) {
  const Value *F = V.find(Key);
  return F ? F->asBool(Default) : Default;
}

long long fieldInt(const Value &V, const char *Key, long long Default) {
  const Value *F = V.find(Key);
  return F ? F->asInt(Default) : Default;
}

double fieldNum(const Value &V, const char *Key, double Default) {
  const Value *F = V.find(Key);
  return F ? F->asNumber(Default) : Default;
}

std::string fieldStr(const Value &V, const char *Key) {
  const Value *F = V.find(Key);
  return F ? F->asString() : std::string();
}

} // namespace

Value ipra::configToJson(const PipelineConfig &Config) {
  Value Webs = Value::object();
  Webs.set("min-lref-ratio", Value::number(Config.Webs.MinLRefRatio))
      .set("min-single-node-freq",
           Value::number(Config.Webs.MinSingleNodeFreq))
      .set("discard-cross-module-static-webs",
           Value::boolean(Config.Webs.DiscardCrossModuleStaticWebs))
      .set("split-sparse-webs", Value::boolean(Config.Webs.SplitSparseWebs))
      .set("assume-closed-world",
           Value::boolean(Config.Webs.AssumeClosedWorld))
      .set("remerge-webs", Value::boolean(Config.Webs.RemergeWebs))
      .set("num-threads", Value::number(Config.Webs.NumThreads));
  Value Clusters = Value::object();
  Clusters
      .set("root-benefit-threshold",
           Value::number(Config.Clusters.RootBenefitThreshold))
      .set("assume-closed-world",
           Value::boolean(Config.Clusters.AssumeClosedWorld));
  Value V = Value::object();
  V.set("ipra", Value::boolean(Config.Ipra))
      .set("spill-motion", Value::boolean(Config.SpillMotion))
      .set("promotion", Value::str(promotionName(Config.Promotion)))
      .set("web-pool",
           Value::number(static_cast<unsigned long long>(Config.WebPool)))
      .set("blanket-count", Value::number(Config.BlanketCount))
      .set("use-profile", Value::boolean(Config.UseProfile))
      .set("local-global-promotion",
           Value::boolean(Config.LocalGlobalPromotion))
      .set("points-to", Value::boolean(Config.PointsTo))
      .set("relax-web-avail", Value::boolean(Config.RelaxWebAvail))
      .set("improved-free-sets", Value::boolean(Config.ImprovedFreeSets))
      .set("caller-save-propagation",
           Value::boolean(Config.CallerSavePropagation))
      .set("assume-closed-world", Value::boolean(Config.AssumeClosedWorld))
      .set("webs", std::move(Webs))
      .set("clusters", std::move(Clusters))
      .set("linker-reserved-regs",
           Value::number(
               static_cast<unsigned long long>(Config.LinkerReservedRegs)))
      .set("num-threads", Value::number(Config.NumThreads))
      .set("delta-analysis", Value::boolean(Config.DeltaAnalysis));
  return V;
}

PipelineConfig ipra::configFromJson(const Value &V) {
  PipelineConfig C;
  C.Ipra = fieldBool(V, "ipra", C.Ipra);
  C.SpillMotion = fieldBool(V, "spill-motion", C.SpillMotion);
  C.Promotion = promotionFromName(fieldStr(V, "promotion"));
  C.WebPool = static_cast<RegMask>(
      fieldInt(V, "web-pool", static_cast<long long>(C.WebPool)));
  C.BlanketCount =
      static_cast<int>(fieldInt(V, "blanket-count", C.BlanketCount));
  C.UseProfile = fieldBool(V, "use-profile", C.UseProfile);
  C.LocalGlobalPromotion =
      fieldBool(V, "local-global-promotion", C.LocalGlobalPromotion);
  C.PointsTo = fieldBool(V, "points-to", C.PointsTo);
  C.RelaxWebAvail = fieldBool(V, "relax-web-avail", C.RelaxWebAvail);
  C.ImprovedFreeSets =
      fieldBool(V, "improved-free-sets", C.ImprovedFreeSets);
  C.CallerSavePropagation =
      fieldBool(V, "caller-save-propagation", C.CallerSavePropagation);
  C.AssumeClosedWorld =
      fieldBool(V, "assume-closed-world", C.AssumeClosedWorld);
  if (const Value *W = V.find("webs")) {
    C.Webs.MinLRefRatio =
        fieldNum(*W, "min-lref-ratio", C.Webs.MinLRefRatio);
    C.Webs.MinSingleNodeFreq =
        fieldInt(*W, "min-single-node-freq", C.Webs.MinSingleNodeFreq);
    C.Webs.DiscardCrossModuleStaticWebs =
        fieldBool(*W, "discard-cross-module-static-webs",
                  C.Webs.DiscardCrossModuleStaticWebs);
    C.Webs.SplitSparseWebs =
        fieldBool(*W, "split-sparse-webs", C.Webs.SplitSparseWebs);
    C.Webs.AssumeClosedWorld =
        fieldBool(*W, "assume-closed-world", C.Webs.AssumeClosedWorld);
    C.Webs.RemergeWebs = fieldBool(*W, "remerge-webs", C.Webs.RemergeWebs);
    C.Webs.NumThreads = static_cast<int>(
        fieldInt(*W, "num-threads", C.Webs.NumThreads));
  }
  if (const Value *Cl = V.find("clusters")) {
    C.Clusters.RootBenefitThreshold = fieldNum(
        *Cl, "root-benefit-threshold", C.Clusters.RootBenefitThreshold);
    C.Clusters.AssumeClosedWorld = fieldBool(
        *Cl, "assume-closed-world", C.Clusters.AssumeClosedWorld);
  }
  C.LinkerReservedRegs = static_cast<RegMask>(fieldInt(
      V, "linker-reserved-regs",
      static_cast<long long>(C.LinkerReservedRegs)));
  C.NumThreads = static_cast<int>(fieldInt(V, "num-threads", C.NumThreads));
  C.DeltaAnalysis = fieldBool(V, "delta-analysis", C.DeltaAnalysis);
  // CacheDir never crosses the wire: cache placement is server policy.
  return C;
}

//===----------------------------------------------------------------------===//
// Request codec.
//===----------------------------------------------------------------------===//

Value ipra::requestToJson(const BuildRequest &Req) {
  Value V = Value::object();
  V.set("program", Value::str(Req.Program))
      .set("phase", Value::str(buildPhaseName(Req.Phase)))
      .set("config", configToJson(Req.Config));
  Value Modules = Value::array();
  for (const SourceFile &S : Req.Modules) {
    Value M = Value::object();
    M.set("name", Value::str(S.Name)).set("text", Value::str(S.Text));
    Modules.push(std::move(M));
  }
  V.set("modules", std::move(Modules));
  Value Summaries = Value::array();
  for (const std::string &S : Req.Summaries)
    Summaries.push(Value::str(S));
  V.set("summaries", std::move(Summaries));
  V.set("database", Value::str(Req.Database));
  Value Objects = Value::array();
  for (const std::string &O : Req.Objects)
    Objects.push(Value::str(O));
  V.set("objects", std::move(Objects));
  if (Req.Profile) {
    Value Profile = Value::object();
    Value Calls = Value::object();
    for (const auto &[Name, N] : Req.Profile->CallCounts)
      Calls.set(Name, Value::number(N));
    Profile.set("calls", std::move(Calls));
    Value Edges = Value::array();
    for (const auto &[Edge, N] : Req.Profile->EdgeCounts) {
      Value E = Value::array();
      E.push(Value::str(Edge.first))
          .push(Value::str(Edge.second))
          .push(Value::number(N));
      Edges.push(std::move(E));
    }
    Profile.set("edges", std::move(Edges));
    V.set("profile", std::move(Profile));
  }
  return V;
}

bool ipra::requestFromJson(const Value &V, BuildRequest &Req,
                           std::string &Error) {
  if (!V.isObject()) {
    Error = "request is not an object";
    return false;
  }
  Req = BuildRequest();
  Req.Program = fieldStr(V, "program");
  std::string Phase = fieldStr(V, "phase");
  if (!parseBuildPhase(Phase.empty() ? "full" : Phase, Req.Phase)) {
    Error = "unknown phase '" + Phase + "'";
    return false;
  }
  if (const Value *C = V.find("config"))
    Req.Config = configFromJson(*C);
  if (const Value *Modules = V.find("modules"))
    for (const Value &M : Modules->items()) {
      SourceFile S;
      S.Name = fieldStr(M, "name");
      S.Text = fieldStr(M, "text");
      Req.Modules.push_back(std::move(S));
    }
  if (const Value *Summaries = V.find("summaries"))
    for (const Value &S : Summaries->items())
      Req.Summaries.push_back(S.asString());
  Req.Database = fieldStr(V, "database");
  if (const Value *Objects = V.find("objects"))
    for (const Value &O : Objects->items())
      Req.Objects.push_back(O.asString());
  if (const Value *Profile = V.find("profile")) {
    ProfileData P;
    if (const Value *Calls = Profile->find("calls"))
      for (const auto &[Name, N] : Calls->members())
        P.CallCounts[Name] = N.asInt();
    if (const Value *Edges = Profile->find("edges"))
      for (const Value &E : Edges->items())
        if (E.items().size() == 3)
          P.EdgeCounts[{E.items()[0].asString(),
                        E.items()[1].asString()}] = E.items()[2].asInt();
    Req.Profile = std::move(P);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Response codec.
//===----------------------------------------------------------------------===//

namespace {

Value analyzerToJson(const AnalyzerStats &S) {
  Value V = Value::object();
  V.set("eligible-globals", Value::number(S.EligibleGlobals))
      .set("total-webs", Value::number(S.TotalWebs))
      .set("considered-webs", Value::number(S.ConsideredWebs))
      .set("colored-webs", Value::number(S.ColoredWebs))
      .set("split-webs", Value::number(S.SplitWebs))
      .set("remerged-webs", Value::number(S.RemergedWebs))
      .set("num-clusters", Value::number(S.NumClusters))
      .set("total-cluster-nodes", Value::number(S.TotalClusterNodes))
      .set("max-cluster-size", Value::number(S.MaxClusterSize))
      .set("escapes-refuted", Value::number(S.EscapesRefuted))
      .set("indirect-callers-resolved",
           Value::number(S.IndirectCallersResolved))
      .set("refsets-ms", Value::number(S.RefSetsMs))
      .set("webs-ms", Value::number(S.WebsMs))
      .set("coloring-ms", Value::number(S.ColoringMs))
      .set("clusters-ms", Value::number(S.ClustersMs))
      .set("regsets-ms", Value::number(S.RegSetsMs));
  return V;
}

AnalyzerStats analyzerFromJson(const Value &V) {
  AnalyzerStats S;
  S.EligibleGlobals =
      static_cast<int>(fieldInt(V, "eligible-globals", 0));
  S.TotalWebs = static_cast<int>(fieldInt(V, "total-webs", 0));
  S.ConsideredWebs = static_cast<int>(fieldInt(V, "considered-webs", 0));
  S.ColoredWebs = static_cast<int>(fieldInt(V, "colored-webs", 0));
  S.SplitWebs = static_cast<int>(fieldInt(V, "split-webs", 0));
  S.RemergedWebs = static_cast<int>(fieldInt(V, "remerged-webs", 0));
  S.NumClusters = static_cast<int>(fieldInt(V, "num-clusters", 0));
  S.TotalClusterNodes =
      static_cast<int>(fieldInt(V, "total-cluster-nodes", 0));
  S.MaxClusterSize = static_cast<int>(fieldInt(V, "max-cluster-size", 0));
  S.EscapesRefuted = static_cast<int>(fieldInt(V, "escapes-refuted", 0));
  S.IndirectCallersResolved =
      static_cast<int>(fieldInt(V, "indirect-callers-resolved", 0));
  S.RefSetsMs = fieldNum(V, "refsets-ms", 0);
  S.WebsMs = fieldNum(V, "webs-ms", 0);
  S.ColoringMs = fieldNum(V, "coloring-ms", 0);
  S.ClustersMs = fieldNum(V, "clusters-ms", 0);
  S.RegSetsMs = fieldNum(V, "regsets-ms", 0);
  return S;
}

Value statsToJson(const PipelineStats &S) {
  Value V = Value::object();
  V.set("threads-used", Value::number(S.ThreadsUsed))
      .set("front-end-ms", Value::number(S.FrontEndMs))
      .set("phase1-ms", Value::number(S.Phase1Ms))
      .set("analyzer-ms", Value::number(S.AnalyzerMs))
      .set("phase2-ms", Value::number(S.Phase2Ms))
      .set("link-ms", Value::number(S.LinkMs))
      .set("total-ms", Value::number(S.TotalMs))
      .set("analyzer-mode", Value::str(S.AnalyzerMode))
      .set("analyzer-fallback-reason",
           Value::str(S.AnalyzerFallbackReason))
      .set("phase1-cache-hits", Value::number(S.Phase1CacheHits))
      .set("phase1-cache-misses", Value::number(S.Phase1CacheMisses))
      .set("analyzer-cache-hits", Value::number(S.AnalyzerCacheHits))
      .set("analyzer-cache-misses", Value::number(S.AnalyzerCacheMisses))
      .set("phase2-cache-hits", Value::number(S.Phase2CacheHits))
      .set("phase2-cache-misses", Value::number(S.Phase2CacheMisses))
      .set("cache-bytes-saved", Value::number(S.CacheBytesSaved))
      .set("summary-bytes", Value::number(S.SummaryBytes))
      .set("database-bytes", Value::number(S.DatabaseBytes))
      .set("object-bytes", Value::number(S.ObjectBytes));
  return V;
}

PipelineStats statsFromJson(const Value &V) {
  PipelineStats S;
  S.ThreadsUsed = static_cast<unsigned>(fieldInt(V, "threads-used", 1));
  S.FrontEndMs = fieldNum(V, "front-end-ms", 0);
  S.Phase1Ms = fieldNum(V, "phase1-ms", 0);
  S.AnalyzerMs = fieldNum(V, "analyzer-ms", 0);
  S.Phase2Ms = fieldNum(V, "phase2-ms", 0);
  S.LinkMs = fieldNum(V, "link-ms", 0);
  S.TotalMs = fieldNum(V, "total-ms", 0);
  S.AnalyzerMode = fieldStr(V, "analyzer-mode");
  S.AnalyzerFallbackReason = fieldStr(V, "analyzer-fallback-reason");
  S.Phase1CacheHits =
      static_cast<unsigned>(fieldInt(V, "phase1-cache-hits", 0));
  S.Phase1CacheMisses =
      static_cast<unsigned>(fieldInt(V, "phase1-cache-misses", 0));
  S.AnalyzerCacheHits =
      static_cast<unsigned>(fieldInt(V, "analyzer-cache-hits", 0));
  S.AnalyzerCacheMisses =
      static_cast<unsigned>(fieldInt(V, "analyzer-cache-misses", 0));
  S.Phase2CacheHits =
      static_cast<unsigned>(fieldInt(V, "phase2-cache-hits", 0));
  S.Phase2CacheMisses =
      static_cast<unsigned>(fieldInt(V, "phase2-cache-misses", 0));
  S.CacheBytesSaved =
      static_cast<size_t>(fieldInt(V, "cache-bytes-saved", 0));
  S.SummaryBytes = static_cast<size_t>(fieldInt(V, "summary-bytes", 0));
  S.DatabaseBytes = static_cast<size_t>(fieldInt(V, "database-bytes", 0));
  S.ObjectBytes = static_cast<size_t>(fieldInt(V, "object-bytes", 0));
  return S;
}

Value deltaToJson(const DeltaStats &D) {
  Value V = Value::object();
  V.set("mode", Value::str(D.Mode == DeltaMode::Incremental ? "incremental"
                                                            : "full"))
      .set("fallback-reason", Value::str(D.FallbackReason))
      .set("changed-procs", Value::number(D.ChangedProcs))
      .set("damaged-sccs", Value::number(D.DamagedSccs))
      .set("total-sccs", Value::number(D.TotalSccs))
      .set("damaged-globals", Value::number(D.DamagedGlobals))
      .set("total-globals", Value::number(D.TotalGlobals));
  return V;
}

DeltaStats deltaFromJson(const Value &V) {
  DeltaStats D;
  D.Mode = fieldStr(V, "mode") == "incremental" ? DeltaMode::Incremental
                                                : DeltaMode::Full;
  D.FallbackReason = fieldStr(V, "fallback-reason");
  D.ChangedProcs = static_cast<int>(fieldInt(V, "changed-procs", 0));
  D.DamagedSccs = static_cast<int>(fieldInt(V, "damaged-sccs", 0));
  D.TotalSccs = static_cast<int>(fieldInt(V, "total-sccs", 0));
  D.DamagedGlobals = static_cast<int>(fieldInt(V, "damaged-globals", 0));
  D.TotalGlobals = static_cast<int>(fieldInt(V, "total-globals", 0));
  return D;
}

} // namespace

Value ipra::responseToJson(const BuildResponse &Resp) {
  Value V = Value::object();
  V.set("program", Value::str(Resp.Program))
      .set("phase", Value::str(buildPhaseName(Resp.Phase)));
  Value Summaries = Value::array();
  for (const std::string &S : Resp.Summaries)
    Summaries.push(Value::str(S));
  V.set("summaries", std::move(Summaries));
  V.set("database", Value::str(Resp.Database));
  Value Objects = Value::array();
  for (const std::string &O : Resp.Objects)
    Objects.push(Value::str(O));
  V.set("objects", std::move(Objects));
  V.set("from-cache", Value::boolean(Resp.FromCache));
  V.set("analyzer", analyzerToJson(Resp.Analyzer));
  V.set("delta", deltaToJson(Resp.Delta));
  V.set("stats", statsToJson(Resp.Stats));
  return V;
}

BuildResponse ipra::responseFromJson(const Value &V) {
  BuildResponse Resp;
  Resp.Program = fieldStr(V, "program");
  std::string Phase = fieldStr(V, "phase");
  parseBuildPhase(Phase.empty() ? "full" : Phase, Resp.Phase);
  if (const Value *Summaries = V.find("summaries"))
    for (const Value &S : Summaries->items())
      Resp.Summaries.push_back(S.asString());
  Resp.Database = fieldStr(V, "database");
  if (const Value *Objects = V.find("objects"))
    for (const Value &O : Objects->items())
      Resp.Objects.push_back(O.asString());
  Resp.FromCache = fieldBool(V, "from-cache", false);
  if (const Value *A = V.find("analyzer"))
    Resp.Analyzer = analyzerFromJson(*A);
  if (const Value *D = V.find("delta"))
    Resp.Delta = deltaFromJson(*D);
  if (const Value *S = V.find("stats"))
    Resp.Stats = statsFromJson(*S);
  return Resp;
}

//===----------------------------------------------------------------------===//
// Envelopes.
//===----------------------------------------------------------------------===//

std::string ipra::encodeBuildRequest(const BuildRequest &Req) {
  Value V = Value::object();
  V.set("kind", Value::str("build")).set("request", requestToJson(Req));
  return V.dump();
}

std::string ipra::encodeControlRequest(WireKind Kind) {
  Value V = Value::object();
  const char *Name = Kind == WireKind::Stats      ? "stats"
                     : Kind == WireKind::Shutdown ? "shutdown"
                                                  : "ping";
  V.set("kind", Value::str(Name));
  return V.dump();
}

bool ipra::decodeRequestEnvelope(const std::string &Payload, WireKind &Kind,
                                 BuildRequest &Req, std::string &Error) {
  Value V;
  if (!Value::parse(Payload, V, Error))
    return false;
  std::string Name = fieldStr(V, "kind");
  if (Name == "build") {
    Kind = WireKind::Build;
    const Value *R = V.find("request");
    if (!R) {
      Error = "build envelope has no request";
      return false;
    }
    return requestFromJson(*R, Req, Error);
  }
  if (Name == "stats") {
    Kind = WireKind::Stats;
    return true;
  }
  if (Name == "ping") {
    Kind = WireKind::Ping;
    return true;
  }
  if (Name == "shutdown") {
    Kind = WireKind::Shutdown;
    return true;
  }
  Error = "unknown request kind '" + Name + "'";
  return false;
}

namespace {

Value statusToJson(const Status &S) {
  Value V = Value::object();
  V.set("ok", Value::boolean(S.Ok))
      .set("code", Value::str(S.Code))
      .set("error", Value::str(S.Ok ? std::string() : S.text()));
  return V;
}

Status statusFromJson(const Value &V) {
  if (fieldBool(V, "ok", false))
    return Status::success();
  std::string Text = fieldStr(V, "error");
  return Status::error(Text.empty() ? "request failed" : Text,
                       fieldStr(V, "code"));
}

} // namespace

std::string ipra::encodeBuildReply(const Result<BuildResponse> &R) {
  Value V = statusToJson(R);
  V.set("response", responseToJson(R.Value));
  return V.dump();
}

std::string ipra::encodeStatusReply(const Status &S) {
  return statusToJson(S).dump();
}

std::string ipra::encodeStatsReply(const json::Value &Stats) {
  Value V = statusToJson(Status::success());
  V.set("stats", Stats);
  return V.dump();
}

Result<BuildResponse> ipra::decodeBuildReply(const std::string &Payload) {
  Value V;
  std::string Error;
  if (!Value::parse(Payload, V, Error))
    return Result<BuildResponse>::failure("bad reply frame: " + Error,
                                          "transport");
  Result<BuildResponse> R;
  static_cast<Status &>(R) = statusFromJson(V);
  if (const Value *Resp = V.find("response"))
    R.Value = responseFromJson(*Resp);
  return R;
}

Status ipra::decodeStatusReply(const std::string &Payload,
                               json::Value *Stats) {
  Value V;
  std::string Error;
  if (!Value::parse(Payload, V, Error))
    return Status::error("bad reply frame: " + Error, "transport");
  if (Stats)
    if (const Value *S = V.find("stats"))
      *Stats = *S;
  return statusFromJson(V);
}
