//===- Daemon.cpp - Socket front end for the build service ----------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ipra;

Daemon::Daemon(std::string SocketPath_, BuildServiceConfig Config)
    : SocketPath(std::move(SocketPath_)), Service(Config) {}

Daemon::~Daemon() {
  requestStop();
  wait();
  if (AcceptThread.joinable())
    AcceptThread.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (std::thread &T : ConnThreads)
      if (T.joinable())
        T.join();
    ConnThreads.clear();
  }
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (!SocketPath.empty())
    ::unlink(SocketPath.c_str());
}

bool Daemon::start(std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + SocketPath;
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a dead daemon would fail the bind; remove
  // it (a live daemon would still hold the file, but two daemons on
  // one path is operator error either way).
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    Error = "bind " + SocketPath + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) != 0) {
    Error = "listen " + SocketPath + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Daemon::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // shutdown() on the listen fd (requestStop) lands here.
      return;
    }
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnThreads.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void Daemon::serveConnection(int Fd) {
  std::string Payload;
  while (readFrame(Fd, Payload)) {
    WireKind Kind;
    BuildRequest Req;
    std::string Error;
    if (!decodeRequestEnvelope(Payload, Kind, Req, Error)) {
      writeFrame(Fd, encodeStatusReply(
                         Status::error(Error, "bad-request")));
      continue;
    }
    switch (Kind) {
    case WireKind::Build: {
      // enqueue, not handle: socket clients share the worker pool and
      // its bounded-queue backpressure with in-process callers.
      Result<BuildResponse> R = Service.enqueue(std::move(Req)).get();
      if (!writeFrame(Fd, encodeBuildReply(R)))
        goto done;
      break;
    }
    case WireKind::Stats:
      if (!writeFrame(Fd, encodeStatsReply(Service.stats().toJson())))
        goto done;
      break;
    case WireKind::Ping:
      if (!writeFrame(Fd, encodeStatusReply(Status::success())))
        goto done;
      break;
    case WireKind::Shutdown:
      // Acknowledge before draining so the client is not left waiting
      // on a daemon that is busy finishing other clients' work.
      writeFrame(Fd, encodeStatusReply(Status::success()));
      requestStop();
      goto done;
    }
  }
done:
  ::close(Fd);
}

void Daemon::requestStop() {
  if (Stopping.exchange(true))
    return;
  // Unblock accept(); no new connections from here on.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  // Drain on a detached-from-caller thread? No: requestStop can be
  // called from a connection thread (the shutdown envelope), and
  // Service.shutdown() never joins connection threads, so draining
  // inline is deadlock-free. It blocks until admitted work finished.
  Service.shutdown();
  {
    std::lock_guard<std::mutex> Lock(StopMutex);
    Stopped = true;
  }
  StopCV.notify_all();
}

void Daemon::wait() {
  std::unique_lock<std::mutex> Lock(StopMutex);
  StopCV.wait(Lock, [this] { return Stopped; });
}
