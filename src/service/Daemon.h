//===- Daemon.h - Socket front end for the build service -------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AF_UNIX transport around BuildService (`mcc --serve <socket>`):
/// an accept loop hands each connection to its own thread, which reads
/// length-prefixed JSON frames (service/Protocol.h), funnels build
/// requests through BuildService::enqueue (so socket clients share the
/// worker pool, the bounded queue, and the "busy" backpressure with
/// in-process callers), and answers stats/ping/shutdown envelopes
/// inline. A "shutdown" request acknowledges, stops the accept loop,
/// drains the service, and unblocks wait().
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SERVICE_DAEMON_H
#define IPRA_SERVICE_DAEMON_H

#include "service/BuildService.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ipra {

/// A build daemon listening on one unix-domain socket.
class Daemon {
public:
  Daemon(std::string SocketPath, BuildServiceConfig Config);
  ~Daemon(); ///< Stops, drains, unlinks the socket.

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds, listens, and spawns the accept thread. Returns false with
  /// \p Error set (stale socket path, overlong path, ...).
  bool start(std::string &Error);

  /// Blocks until a shutdown request arrives (over the wire or via
  /// requestStop) and the service has drained.
  void wait();

  /// Initiates the same graceful shutdown a wire request does.
  void requestStop();

  const std::string &socketPath() const { return SocketPath; }
  BuildService &service() { return Service; }

private:
  void acceptLoop();
  void serveConnection(int Fd);

  std::string SocketPath;
  BuildService Service;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread AcceptThread;
  std::mutex ConnMutex;
  std::vector<std::thread> ConnThreads;
  std::mutex StopMutex;
  std::condition_variable StopCV;
  bool Stopped = false;
};

} // namespace ipra

#endif // IPRA_SERVICE_DAEMON_H
