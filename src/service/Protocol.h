//===- Protocol.h - Build-service wire protocol ----------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's wire protocol: length-prefixed JSON frames over a
/// stream socket. A frame is a 4-byte big-endian payload length
/// followed by that many bytes of UTF-8 JSON. Requests are an envelope
///
///   {"kind":"build","request":{...BuildRequest...}}
///   {"kind":"stats"}  {"kind":"ping"}  {"kind":"shutdown"}
///
/// and every reply is {"ok":...,"code":...,"error":...} plus a
/// kind-specific payload ("response" for builds, "stats" for stats).
/// The executable never crosses the wire: a build reply carries the
/// textual artifacts (summaries / database / objects) and the client
/// links locally, which keeps replies bounded and lets the client
/// verify byte-identical output parity against a local build.
///
/// The codecs here are the single source of truth for the mapping
/// between the BuildRequest/BuildResponse value types and JSON; the
/// daemon, the client, and the protocol tests all go through them.
/// PipelineConfig::CacheDir deliberately never crosses the wire — cache
/// placement is server policy, not client input.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SERVICE_PROTOCOL_H
#define IPRA_SERVICE_PROTOCOL_H

#include "driver/BuildRequest.h"
#include "support/Json.h"
#include "support/Status.h"

#include <string>

namespace ipra {

/// Maximum accepted frame payload (64 MiB) — a sanity bound against a
/// garbage length prefix, far above any real program this pipeline
/// compiles.
inline constexpr size_t MaxFrameBytes = 64u << 20;

/// Writes one length-prefixed frame; retries partial writes. Returns
/// false on a write error (EPIPE when the peer vanished, etc.).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one length-prefixed frame into \p Payload. Returns false on
/// EOF, a read error, or an oversized length prefix.
bool readFrame(int Fd, std::string &Payload);

// Request side -----------------------------------------------------------

/// What a decoded request envelope asks for.
enum class WireKind { Build, Stats, Ping, Shutdown };

/// Encodes the envelope for a build request.
std::string encodeBuildRequest(const BuildRequest &Req);
/// Encodes a control envelope ("stats", "ping", "shutdown").
std::string encodeControlRequest(WireKind Kind);

/// Decodes one request envelope. On Kind == Build, \p Req is filled.
/// Returns false with \p Error on malformed input.
bool decodeRequestEnvelope(const std::string &Payload, WireKind &Kind,
                           BuildRequest &Req, std::string &Error);

// Reply side -------------------------------------------------------------

/// Encodes a build reply (status + response payload, no executable).
std::string encodeBuildReply(const Result<BuildResponse> &R);
/// Encodes a bare status reply (ping/shutdown acks, decode failures).
std::string encodeStatusReply(const Status &S);
/// Encodes the stats reply around a caller-built JSON stats object.
std::string encodeStatsReply(const json::Value &Stats);

/// Decodes a build reply. Transport-level JSON breakage yields a
/// failure Result with code "transport".
Result<BuildResponse> decodeBuildReply(const std::string &Payload);
/// Decodes any reply's status portion (and, for stats replies, hands
/// back the stats object via \p Stats).
Status decodeStatusReply(const std::string &Payload,
                         json::Value *Stats = nullptr);

// Value codecs (exposed for tests) ---------------------------------------

json::Value configToJson(const PipelineConfig &Config);
PipelineConfig configFromJson(const json::Value &V);
json::Value requestToJson(const BuildRequest &Req);
bool requestFromJson(const json::Value &V, BuildRequest &Req,
                     std::string &Error);
json::Value responseToJson(const BuildResponse &Resp);
BuildResponse responseFromJson(const json::Value &V);

} // namespace ipra

#endif // IPRA_SERVICE_PROTOCOL_H
