//===- Client.h - Thin client for the build daemon -------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the daemon protocol (`mcc --client <socket>`).
/// One ServiceClient wraps one connection; request() is synchronous
/// (frame out, frame in). Transport failures come back as a Status with
/// code "transport", so callers distinguish "the daemon said no"
/// ("busy", "shutdown", "config-mismatch") from "the daemon is gone".
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SERVICE_CLIENT_H
#define IPRA_SERVICE_CLIENT_H

#include "driver/BuildRequest.h"
#include "support/Json.h"
#include "support/Status.h"

#include <string>

namespace ipra {

class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient() { disconnect(); }

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects to the daemon's unix socket.
  Status connect(const std::string &SocketPath);
  void disconnect();
  bool connected() const { return Fd >= 0; }

  /// Sends one build request and waits for its reply.
  Result<BuildResponse> request(const BuildRequest &Req);

  /// Fetches the service stats snapshot as a JSON object.
  Result<json::Value> stats();

  /// Liveness probe.
  Status ping();

  /// Asks the daemon to drain and exit (acknowledged before the drain
  /// finishes).
  Status shutdownServer();

private:
  Status roundTrip(const std::string &Payload, std::string &Reply);

  int Fd = -1;
};

} // namespace ipra

#endif // IPRA_SERVICE_CLIENT_H
