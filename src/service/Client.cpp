//===- Client.cpp - Thin client for the build daemon ----------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ipra;

Status ServiceClient::connect(const std::string &SocketPath) {
  disconnect();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error("socket path too long: " + SocketPath,
                         "transport");
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error(std::string("socket: ") + std::strerror(errno),
                         "transport");
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Status S = Status::error("connect " + SocketPath + ": " +
                                 std::strerror(errno),
                             "transport");
    disconnect();
    return S;
  }
  return Status::success();
}

void ServiceClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Status ServiceClient::roundTrip(const std::string &Payload,
                                std::string &Reply) {
  if (Fd < 0)
    return Status::error("not connected", "transport");
  if (!writeFrame(Fd, Payload))
    return Status::error("failed to send request frame", "transport");
  if (!readFrame(Fd, Reply))
    return Status::error("connection closed before a reply arrived",
                         "transport");
  return Status::success();
}

Result<BuildResponse> ServiceClient::request(const BuildRequest &Req) {
  std::string Reply;
  Status S = roundTrip(encodeBuildRequest(Req), Reply);
  if (!S.ok())
    return Result<BuildResponse>::failure(std::move(S));
  return decodeBuildReply(Reply);
}

Result<json::Value> ServiceClient::stats() {
  std::string Reply;
  Status S = roundTrip(encodeControlRequest(WireKind::Stats), Reply);
  if (!S.ok())
    return Result<json::Value>::failure(std::move(S));
  json::Value Stats;
  Status Decoded = decodeStatusReply(Reply, &Stats);
  if (!Decoded.ok())
    return Result<json::Value>::failure(std::move(Decoded));
  return Result<json::Value>::success(std::move(Stats));
}

Status ServiceClient::ping() {
  std::string Reply;
  Status S = roundTrip(encodeControlRequest(WireKind::Ping), Reply);
  if (!S.ok())
    return S;
  return decodeStatusReply(Reply);
}

Status ServiceClient::shutdownServer() {
  std::string Reply;
  Status S = roundTrip(encodeControlRequest(WireKind::Shutdown), Reply);
  if (!S.ok())
    return S;
  return decodeStatusReply(Reply);
}
