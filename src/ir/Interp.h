//===- Interp.h - Reference IR interpreter ---------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter executing IR modules directly, with the same
/// observable semantics as the PR32 simulator (wrapping arithmetic,
/// division by zero yields zero, word-addressed memory). It anchors the
/// differential testing story: unoptimized IR, optimized IR, and the
/// generated machine code must all behave identically, which separates
/// optimizer bugs from code-generation bugs.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_INTERP_H
#define IPRA_IR_INTERP_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace ipra {

/// Outcome of interpreting a program at the IR level.
struct IRRunResult {
  bool Ok = false;          ///< main returned normally.
  std::string Error;        ///< Trap/limit description when !Ok.
  std::string Output;       ///< print/printc/prints output.
  int32_t ExitCode = 0;
  long long Steps = 0;      ///< IR instructions executed.
};

/// Interprets the program formed by \p Modules, starting at "main".
/// Cross-module symbols resolve like the linker's (common globals merge
/// by qualified name; functions resolve by qualified name). Execution
/// stops after \p MaxSteps instructions.
IRRunResult interpretIR(const std::vector<const IRModule *> &Modules,
                        long long MaxSteps = 100'000'000);

} // namespace ipra

#endif // IPRA_IR_INTERP_H
