//===- IR.cpp - Three-address IR printing and helpers ---------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <sstream>

using namespace ipra;

bool ipra::isCompare(BinKind BK) {
  switch (BK) {
  case BinKind::Lt:
  case BinKind::Le:
  case BinKind::Gt:
  case BinKind::Ge:
  case BinKind::Eq:
  case BinKind::Ne:
    return true;
  default:
    return false;
  }
}

static const char *binKindName(BinKind BK) {
  switch (BK) {
  case BinKind::Add:
    return "add";
  case BinKind::Sub:
    return "sub";
  case BinKind::Mul:
    return "mul";
  case BinKind::Div:
    return "div";
  case BinKind::Rem:
    return "rem";
  case BinKind::And:
    return "and";
  case BinKind::Or:
    return "or";
  case BinKind::Xor:
    return "xor";
  case BinKind::Shl:
    return "shl";
  case BinKind::Shr:
    return "shr";
  case BinKind::Lt:
    return "lt";
  case BinKind::Le:
    return "le";
  case BinKind::Gt:
    return "gt";
  case BinKind::Ge:
    return "ge";
  case BinKind::Eq:
    return "eq";
  case BinKind::Ne:
    return "ne";
  }
  return "?";
}

static std::string vr(unsigned Reg) { return "%" + std::to_string(Reg); }

std::string IRInstr::toString() const {
  std::ostringstream OS;
  auto Dest = [&]() -> std::ostringstream & {
    if (HasDst)
      OS << vr(Dst) << " = ";
    return OS;
  };
  switch (Op) {
  case IROp::Const:
    Dest() << "const " << Imm;
    break;
  case IROp::Copy:
    Dest() << "copy " << vr(Srcs[0]);
    break;
  case IROp::Bin:
    Dest() << binKindName(BK) << " " << vr(Srcs[0]) << ", " << vr(Srcs[1]);
    break;
  case IROp::Neg:
    Dest() << "neg " << vr(Srcs[0]);
    break;
  case IROp::Not:
    Dest() << "not " << vr(Srcs[0]);
    break;
  case IROp::LdG:
    Dest() << "ldg @" << Sym;
    break;
  case IROp::StG:
    OS << "stg @" << Sym << ", " << vr(Srcs[0]);
    break;
  case IROp::LdSlot:
    Dest() << "ldslot $" << Slot;
    break;
  case IROp::StSlot:
    OS << "stslot $" << Slot << ", " << vr(Srcs[0]);
    break;
  case IROp::LdElem:
    Dest() << "ldelem ";
    if (!Sym.empty())
      OS << "@" << Sym;
    else
      OS << "$" << Slot;
    OS << "[" << vr(Srcs[0]) << "]";
    break;
  case IROp::StElem:
    OS << "stelem ";
    if (!Sym.empty())
      OS << "@" << Sym;
    else
      OS << "$" << Slot;
    OS << "[" << vr(Srcs[0]) << "], " << vr(Srcs[1]);
    break;
  case IROp::LdPtr:
    Dest() << "ldptr *" << vr(Srcs[0]);
    break;
  case IROp::StPtr:
    OS << "stptr *" << vr(Srcs[0]) << ", " << vr(Srcs[1]);
    break;
  case IROp::AddrG:
    Dest() << "addrg @" << Sym;
    break;
  case IROp::AddrSlot:
    Dest() << "addrslot $" << Slot;
    break;
  case IROp::Call: {
    Dest() << "call @" << Sym << "(";
    for (size_t I = 0; I < Srcs.size(); ++I)
      OS << (I ? ", " : "") << vr(Srcs[I]);
    OS << ")";
    break;
  }
  case IROp::CallInd: {
    Dest() << "calli *" << vr(Srcs[0]) << "(";
    for (size_t I = 1; I < Srcs.size(); ++I)
      OS << (I > 1 ? ", " : "") << vr(Srcs[I]);
    OS << ")";
    break;
  }
  case IROp::Print:
    OS << "print " << vr(Srcs[0]);
    break;
  case IROp::PrintC:
    OS << "printc " << vr(Srcs[0]);
    break;
  case IROp::Ret:
    OS << "ret";
    if (!Srcs.empty())
      OS << " " << vr(Srcs[0]);
    break;
  case IROp::Br:
    OS << "br bb" << Target1;
    break;
  case IROp::CondBr:
    OS << "condbr " << vr(Srcs[0]) << ", bb" << Target1 << ", bb"
       << Target2;
    break;
  }
  return OS.str();
}

std::vector<int> IRBlock::successors() const {
  if (!hasTerminator())
    return {};
  const IRInstr &T = Instrs.back();
  switch (T.Op) {
  case IROp::Br:
    return {T.Target1};
  case IROp::CondBr:
    if (T.Target1 == T.Target2)
      return {T.Target1};
    return {T.Target1, T.Target2};
  default:
    return {};
  }
}

IRBlock *IRFunction::newBlock() {
  auto B = std::make_unique<IRBlock>();
  B->Id = static_cast<int>(Blocks.size());
  Blocks.push_back(std::move(B));
  return Blocks.back().get();
}

std::string IRFunction::toString() const {
  std::ostringstream OS;
  OS << (IsStatic ? "static " : "") << "func " << Name << "("
     << NumParams << " params, " << NumVRegs << " vregs)";
  if (AddressTaken)
    OS << " [addrtaken]";
  if (MakesIndirectCalls)
    OS << " [indcalls]";
  OS << "\n";
  for (const IRSlot &S : Slots)
    OS << "  slot $" << (&S - Slots.data()) << ": " << S.Name << " ["
       << S.SizeWords << "]\n";
  for (const auto &B : Blocks) {
    OS << "bb" << B->Id << ":\n";
    for (const IRInstr &I : B->Instrs)
      OS << "  " << I.toString() << "\n";
  }
  return OS.str();
}

IRFunction *IRModule::findFunction(const std::string &FuncName) {
  for (auto &F : Functions)
    if (F->Name == FuncName)
      return F.get();
  return nullptr;
}

IRGlobal *IRModule::findGlobal(const std::string &GlobalName) {
  for (IRGlobal &G : Globals)
    if (G.Name == GlobalName)
      return &G;
  return nullptr;
}

std::string IRModule::toString() const {
  std::ostringstream OS;
  OS << "module " << Name << "\n";
  for (const IRGlobal &G : Globals) {
    OS << (G.IsStatic ? "static " : "") << "global @" << G.Name << " ["
       << G.SizeWords << "]";
    if (G.AddressTaken)
      OS << " [aliased]";
    if (!G.FuncInit.empty())
      OS << " = &" << G.FuncInit;
    OS << "\n";
  }
  for (const auto &F : Functions)
    OS << F->toString();
  return OS.str();
}
