//===- CFG.cpp - Control-flow graph analyses ------------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace ipra;

CFGInfo::CFGInfo(const IRFunction &F) {
  size_t N = F.Blocks.size();
  Preds.resize(N);
  Succs.resize(N);
  Reachable.assign(N, false);
  RPOIndex.assign(N, -1);
  IDom.assign(N, -1);
  LoopDepth.assign(N, 0);

  for (const auto &B : F.Blocks)
    Succs[B->Id] = B->successors();

  // Depth-first post-order from entry.
  std::vector<int> PostOrder;
  PostOrder.reserve(N);
  std::vector<int> Stack;
  std::vector<uint8_t> State(N, 0); // 0=unvisited, 1=on stack, 2=done
  Stack.push_back(0);
  // Iterative DFS computing post-order.
  std::vector<size_t> NextChild(N, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    int B = Stack.back();
    if (NextChild[B] < Succs[B].size()) {
      int S = Succs[B][NextChild[B]++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back(S);
      }
    } else {
      State[B] = 2;
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (size_t I = 0; I < RPO.size(); ++I) {
    RPOIndex[RPO[I]] = static_cast<int>(I);
    Reachable[RPO[I]] = true;
  }

  // Only count predecessors that are reachable.
  for (int B : RPO)
    for (int S : Succs[B])
      Preds[S].push_back(B);

  computeDominators(F);
  computeLoopDepths(F);
}

// Cooper-Harvey-Kennedy iterative dominator algorithm.
void CFGInfo::computeDominators(const IRFunction &F) {
  (void)F;
  if (RPO.empty())
    return;
  IDom[RPO[0]] = RPO[0]; // Temporarily self; reset to -1 afterwards.

  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      int B = RPO[I];
      int NewIDom = -1;
      for (int P : Preds[B]) {
        if (IDom[P] == -1)
          continue; // Not yet processed.
        NewIDom = NewIDom == -1 ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != -1 && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[RPO[0]] = -1;
}

bool CFGInfo::dominates(int A, int B) const {
  if (!Reachable[A] || !Reachable[B])
    return false;
  while (B != -1) {
    if (A == B)
      return true;
    B = IDom[B];
  }
  return false;
}

void CFGInfo::computeLoopDepths(const IRFunction &F) {
  // Natural loops: for each back edge (T -> H) where H dominates T,
  // collect the loop body and bump the depth of every member. Back
  // edges sharing a header merge into one Loop record.
  size_t N = F.Blocks.size();
  std::map<int, std::set<int>> LoopsByHeader;
  for (int T : RPO) {
    for (int H : Succs[T]) {
      if (!dominates(H, T))
        continue;
      // Back edge T -> H. Walk predecessors from T until H.
      std::vector<bool> InLoop(N, false);
      InLoop[H] = true;
      std::vector<int> Work;
      if (!InLoop[T]) {
        InLoop[T] = true;
        Work.push_back(T);
      }
      while (!Work.empty()) {
        int B = Work.back();
        Work.pop_back();
        for (int P : Preds[B]) {
          if (!InLoop[P]) {
            InLoop[P] = true;
            Work.push_back(P);
          }
        }
      }
      for (size_t B = 0; B < N; ++B)
        if (InLoop[B]) {
          ++LoopDepth[B];
          LoopsByHeader[H].insert(static_cast<int>(B));
        }
    }
  }
  for (auto &[Header, Members] : LoopsByHeader) {
    Loop L;
    L.Header = Header;
    L.Blocks.assign(Members.begin(), Members.end());
    Loops.push_back(std::move(L));
  }
}

long long CFGInfo::blockFrequency(int Block) const {
  int Depth = std::min(LoopDepth[Block], 4);
  long long Freq = 1;
  for (int I = 0; I < Depth; ++I)
    Freq *= 10;
  return Freq;
}
