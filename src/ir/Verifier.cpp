//===- Verifier.cpp - IR well-formedness checks ---------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

using namespace ipra;

namespace {

/// Expected source-operand count for each opcode; -1 means variable.
int expectedSrcs(const IRInstr &I) {
  switch (I.Op) {
  case IROp::Const:
  case IROp::LdG:
  case IROp::LdSlot:
  case IROp::AddrG:
  case IROp::AddrSlot:
    return 0;
  case IROp::Copy:
  case IROp::Neg:
  case IROp::Not:
  case IROp::StG:
  case IROp::StSlot:
  case IROp::LdElem:
  case IROp::LdPtr:
  case IROp::Print:
  case IROp::PrintC:
  case IROp::CondBr:
    return 1;
  case IROp::Bin:
  case IROp::StElem:
  case IROp::StPtr:
    return 2;
  case IROp::Br:
    return 0;
  case IROp::Ret:
  case IROp::Call:
  case IROp::CallInd:
    return -1;
  }
  return -1;
}

bool expectsDst(IROp Op) {
  switch (Op) {
  case IROp::Const:
  case IROp::Copy:
  case IROp::Bin:
  case IROp::Neg:
  case IROp::Not:
  case IROp::LdG:
  case IROp::LdSlot:
  case IROp::LdElem:
  case IROp::LdPtr:
  case IROp::AddrG:
  case IROp::AddrSlot:
    return true;
  default:
    return false;
  }
}

} // namespace

std::vector<std::string> ipra::verifyFunction(const IRFunction &F) {
  std::vector<std::string> Problems;
  auto Bad = [&](const std::string &Message) {
    Problems.push_back(F.Name + ": " + Message);
  };

  if (F.Blocks.empty()) {
    Bad("function has no blocks");
    return Problems;
  }

  int NumBlocks = static_cast<int>(F.Blocks.size());
  for (const auto &B : F.Blocks) {
    if (B->Instrs.empty() || !B->Instrs.back().isTerminator()) {
      Bad("bb" + std::to_string(B->Id) + " does not end in a terminator");
      continue;
    }
    for (size_t Idx = 0; Idx < B->Instrs.size(); ++Idx) {
      const IRInstr &I = B->Instrs[Idx];
      std::string Where =
          "bb" + std::to_string(B->Id) + "[" + std::to_string(Idx) + "] ";
      if (I.isTerminator() && Idx + 1 != B->Instrs.size())
        Bad(Where + "interior terminator");
      int Expected = expectedSrcs(I);
      if (Expected >= 0 && static_cast<int>(I.Srcs.size()) != Expected)
        Bad(Where + "wrong operand count for " + I.toString());
      if (I.Op == IROp::Ret && I.Srcs.size() > 1)
        Bad(Where + "ret with more than one operand");
      if (I.Op == IROp::CallInd && I.Srcs.empty())
        Bad(Where + "indirect call without target operand");
      if (expectsDst(I.Op) && !I.HasDst)
        Bad(Where + "missing destination: " + I.toString());
      if (!expectsDst(I.Op) && I.Op != IROp::Call && I.Op != IROp::CallInd &&
          I.HasDst)
        Bad(Where + "unexpected destination: " + I.toString());
      if (I.HasDst && I.Dst >= F.NumVRegs)
        Bad(Where + "dst vreg out of range");
      for (unsigned S : I.Srcs)
        if (S >= F.NumVRegs)
          Bad(Where + "src vreg out of range");
      if (I.Op == IROp::Br || I.Op == IROp::CondBr) {
        if (I.Target1 < 0 || I.Target1 >= NumBlocks)
          Bad(Where + "branch target out of range");
        if (I.Op == IROp::CondBr &&
            (I.Target2 < 0 || I.Target2 >= NumBlocks))
          Bad(Where + "false branch target out of range");
      }
      bool UsesSlot = I.Op == IROp::LdSlot || I.Op == IROp::StSlot ||
                      I.Op == IROp::AddrSlot ||
                      ((I.Op == IROp::LdElem || I.Op == IROp::StElem) &&
                       I.Sym.empty());
      if (UsesSlot &&
          (I.Slot < 0 || I.Slot >= static_cast<int>(F.Slots.size())))
        Bad(Where + "slot out of range");
      bool UsesSym = I.Op == IROp::LdG || I.Op == IROp::StG ||
                     I.Op == IROp::AddrG || I.Op == IROp::Call ||
                     ((I.Op == IROp::LdElem || I.Op == IROp::StElem) &&
                      I.Slot < 0);
      if (UsesSym && I.Sym.empty())
        Bad(Where + "missing symbol: " + I.toString());
    }
  }
  return Problems;
}

std::vector<std::string> ipra::verifyModule(const IRModule &M) {
  std::vector<std::string> Problems;
  for (const auto &F : M.Functions) {
    auto P = verifyFunction(*F);
    Problems.insert(Problems.end(), P.begin(), P.end());
  }
  return Problems;
}
