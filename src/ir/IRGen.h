//===- IRGen.h - AST to IR lowering ----------------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically-checked ModuleAST to the three-address IR.
/// Scalar locals that are never address-taken live in virtual registers;
/// address-taken scalars and arrays get stack slots. String literals
/// become module-private char-array globals. The prints() builtin lowers
/// to a call to the runtime function __prints (the driver links a MiniC
/// runtime module providing it).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_IRGEN_H
#define IPRA_IR_IRGEN_H

#include "ir/IR.h"
#include "lang/AST.h"
#include "support/Diagnostics.h"

#include <memory>

namespace ipra {

/// Generates IR for \p M, which must have passed Sema. Returns null only
/// if \p M contains functions with bodies that Sema failed to resolve
/// (callers should already have bailed on Sema errors).
std::unique_ptr<IRModule> generateIR(const ModuleAST &M,
                                     DiagnosticEngine &Diags);

} // namespace ipra

#endif // IPRA_IR_IRGEN_H
