//===- CFG.h - Control-flow graph analyses ---------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG utilities over IRFunction: predecessors, reverse post-order,
/// dominator computation, and loop-nesting depth. Loop depth drives the
/// compiler first phase's frequency heuristics (a block at nesting depth
/// d is weighted 10^d), which the paper's prototype used in place of
/// profile data.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_CFG_H
#define IPRA_IR_CFG_H

#include "ir/IR.h"

#include <vector>

namespace ipra {

/// Analysis bundle for one function's CFG. Build once; invalidated by
/// any CFG mutation.
class CFGInfo {
public:
  explicit CFGInfo(const IRFunction &F);

  const std::vector<int> &predecessors(int Block) const {
    return Preds[Block];
  }
  const std::vector<int> &successors(int Block) const {
    return Succs[Block];
  }

  /// Blocks reachable from entry, in reverse post-order.
  const std::vector<int> &rpo() const { return RPO; }

  bool isReachable(int Block) const { return Reachable[Block]; }

  /// Immediate dominator of \p Block (-1 for the entry block and for
  /// unreachable blocks).
  int idom(int Block) const { return IDom[Block]; }

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(int A, int B) const;

  /// Loop-nesting depth of \p Block (0 = not in any loop).
  int loopDepth(int Block) const { return LoopDepth[Block]; }

  /// A natural loop: the header plus every block of every back edge
  /// targeting it (back edges with the same header merge into one loop).
  struct Loop {
    int Header = -1;
    std::vector<int> Blocks; ///< Includes the header.
  };
  const std::vector<Loop> &loops() const { return Loops; }

  /// Frequency weight used by the first-phase heuristics: 10^depth,
  /// capped at 10^4.
  long long blockFrequency(int Block) const;

private:
  void computeDominators(const IRFunction &F);
  void computeLoopDepths(const IRFunction &F);

  std::vector<std::vector<int>> Preds, Succs;
  std::vector<int> RPO;
  std::vector<int> RPOIndex; ///< Position of each block in RPO, -1 if not.
  std::vector<bool> Reachable;
  std::vector<int> IDom;
  std::vector<int> LoopDepth;
  std::vector<Loop> Loops;
};

} // namespace ipra

#endif // IPRA_IR_CFG_H
