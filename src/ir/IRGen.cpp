//===- IRGen.cpp - AST to IR lowering -------------------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "ir/IRGen.h"

#include <unordered_map>

using namespace ipra;

namespace {

/// Where a local variable lives.
struct Binding {
  enum class Kind : uint8_t { VReg, Slot } K = Kind::VReg;
  unsigned VReg = 0;
  int Slot = -1;
};

class IRGenImpl {
public:
  IRGenImpl(const ModuleAST &M, IRModule &Out, DiagnosticEngine &Diags)
      : M(M), Out(Out), Diags(Diags) {}

  void run();

private:
  void genGlobal(const VarDecl &G);
  void genFunction(const FuncDecl &FD);

  // --- Block plumbing -----------------------------------------------------
  IRBlock *newBlock() { return F->newBlock(); }
  void setBlock(IRBlock *B) { Cur = B; }
  /// Appends \p I to the current block. No-op when the current position
  /// is unreachable (after a terminator with no new block set).
  void emit(IRInstr I) {
    if (Cur)
      Cur->Instrs.push_back(std::move(I));
  }
  void emitBr(IRBlock *Target) {
    IRInstr I;
    I.Op = IROp::Br;
    I.Target1 = Target->Id;
    emit(std::move(I));
    Cur = nullptr;
  }
  void emitCondBr(unsigned Cond, IRBlock *TrueB, IRBlock *FalseB) {
    IRInstr I;
    I.Op = IROp::CondBr;
    I.Srcs = {Cond};
    I.Target1 = TrueB->Id;
    I.Target2 = FalseB->Id;
    emit(std::move(I));
    Cur = nullptr;
  }

  unsigned emitDef(IRInstr I) {
    unsigned Dst = F->newVReg();
    I.HasDst = true;
    I.Dst = Dst;
    emit(std::move(I));
    return Dst;
  }
  unsigned emitConst(int32_t Value) {
    IRInstr I;
    I.Op = IROp::Const;
    I.Imm = Value;
    return emitDef(std::move(I));
  }
  void emitCopyTo(unsigned Dst, unsigned Src) {
    IRInstr I;
    I.Op = IROp::Copy;
    I.HasDst = true;
    I.Dst = Dst;
    I.Srcs = {Src};
    emit(std::move(I));
  }

  // --- Expressions --------------------------------------------------------
  unsigned genExpr(const Expr *E);
  unsigned genVarRefValue(const VarRefExpr *E);
  unsigned genUnary(const UnaryExpr *E);
  unsigned genBinary(const BinaryExpr *E);
  unsigned genAssign(const AssignExpr *E);
  unsigned genIndex(const IndexExpr *E);
  unsigned genCall(const CallExpr *E, bool WantValue);
  /// Lowers a boolean expression directly to control flow.
  void genBranchCond(const Expr *E, IRBlock *TrueB, IRBlock *FalseB);
  /// Materializes a control-flow boolean into a 0/1 vreg.
  unsigned genBoolValue(const Expr *E);
  /// Computes the element address for pointer-based indexing.
  unsigned genPointerElemAddr(unsigned Base, const Expr *Index);

  // --- Statements ---------------------------------------------------------
  void genStmt(const Stmt *S);

  /// Resolves the storage for a local variable.
  Binding &bindingOf(const VarDecl *V) {
    auto It = Bindings.find(V);
    assert(It != Bindings.end() && "unbound local");
    return It->second;
  }

  /// Creates the module-private global for a string literal and returns
  /// its name.
  std::string internString(const std::string &Text);

  const ModuleAST &M;
  IRModule &Out;
  DiagnosticEngine &Diags;
  IRFunction *F = nullptr;
  IRBlock *Cur = nullptr;
  std::unordered_map<const VarDecl *, Binding> Bindings;
  std::vector<IRBlock *> BreakTargets, ContinueTargets;
  int StringCounter = 0;
};

} // namespace

void IRGenImpl::run() {
  Out.Name = M.Name;
  for (const auto &G : M.Globals)
    genGlobal(*G);
  for (const auto &FD : M.Functions)
    if (FD->isDefinition())
      genFunction(*FD);
}

void IRGenImpl::genGlobal(const VarDecl &G) {
  IRGlobal IG;
  IG.Name = G.Name;
  IG.Module = M.Name;
  IG.IsStatic = G.IsStatic;
  IG.AddressTaken = G.AddressTaken;
  if (G.DeclType.isArray()) {
    IG.IsArray = true;
    IG.SizeWords = G.DeclType.ArraySize;
  } else {
    IG.SizeWords = 1;
  }
  switch (G.Init.InitKind) {
  case GlobalInit::Kind::None:
    break;
  case GlobalInit::Kind::Scalar:
    IG.Init = {G.Init.Scalar};
    break;
  case GlobalInit::Kind::List:
    IG.Init = G.Init.List;
    break;
  case GlobalInit::Kind::String:
    for (char C : G.Init.Str)
      IG.Init.push_back(static_cast<int32_t>(static_cast<unsigned char>(C)));
    IG.Init.push_back(0);
    break;
  case GlobalInit::Kind::FuncAddr:
    IG.FuncInit = G.Init.FuncName;
    break;
  }
  Out.Globals.push_back(std::move(IG));
}

std::string IRGenImpl::internString(const std::string &Text) {
  IRGlobal IG;
  IG.Name = ".str" + std::to_string(StringCounter++);
  IG.Module = M.Name;
  IG.IsStatic = true; // Anonymous literals are module-private.
  IG.IsArray = true;
  IG.SizeWords = static_cast<int>(Text.size()) + 1;
  for (char C : Text)
    IG.Init.push_back(static_cast<int32_t>(static_cast<unsigned char>(C)));
  IG.Init.push_back(0);
  Out.Globals.push_back(std::move(IG));
  return Out.Globals.back().Name;
}

void IRGenImpl::genFunction(const FuncDecl &FD) {
  auto Fn = std::make_unique<IRFunction>();
  F = Fn.get();
  F->Name = FD.Name;
  F->Module = M.Name;
  F->IsStatic = FD.IsStatic;
  F->AddressTaken = FD.AddressTaken;
  F->MakesIndirectCalls = FD.MakesIndirectCalls;
  F->ReturnsValue = !FD.RetType.isVoid();
  F->NumParams = static_cast<unsigned>(FD.Params.size());

  Bindings.clear();
  BreakTargets.clear();
  ContinueTargets.clear();

  setBlock(F->newBlock());

  // Parameters arrive in vregs 0..NumParams-1.
  for (unsigned I = 0; I < F->NumParams; ++I)
    (void)F->newVReg();

  for (unsigned I = 0; I < F->NumParams; ++I) {
    VarDecl *P = FD.Params[I].get();
    if (P->AddressTaken) {
      int Slot = static_cast<int>(F->Slots.size());
      F->Slots.push_back(IRSlot{P->Name, 1, false});
      IRInstr St;
      St.Op = IROp::StSlot;
      St.Slot = Slot;
      St.Srcs = {I};
      emit(std::move(St));
      Bindings[P] = Binding{Binding::Kind::Slot, 0, Slot};
    } else {
      Bindings[P] = Binding{Binding::Kind::VReg, I, -1};
    }
  }

  genStmt(FD.Body.get());

  // Implicit return when control falls off the end.
  if (Cur) {
    IRInstr Ret;
    Ret.Op = IROp::Ret;
    if (F->ReturnsValue)
      Ret.Srcs = {emitConst(0)};
    emit(std::move(Ret));
    Cur = nullptr;
  }

  Out.Functions.push_back(std::move(Fn));
  F = nullptr;
}

void IRGenImpl::genStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Body)
      genStmt(Child.get());
    return;
  case Stmt::Kind::If: {
    const auto *If = static_cast<const IfStmt *>(S);
    IRBlock *ThenB = newBlock();
    IRBlock *EndB = newBlock();
    IRBlock *ElseB = If->Else ? newBlock() : EndB;
    genBranchCond(If->Cond.get(), ThenB, ElseB);
    setBlock(ThenB);
    genStmt(If->Then.get());
    if (Cur)
      emitBr(EndB);
    if (If->Else) {
      setBlock(ElseB);
      genStmt(If->Else.get());
      if (Cur)
        emitBr(EndB);
    }
    setBlock(EndB);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    IRBlock *CondB = newBlock();
    IRBlock *BodyB = newBlock();
    IRBlock *EndB = newBlock();
    emitBr(CondB);
    setBlock(CondB);
    genBranchCond(W->Cond.get(), BodyB, EndB);
    BreakTargets.push_back(EndB);
    ContinueTargets.push_back(CondB);
    setBlock(BodyB);
    genStmt(W->Body.get());
    if (Cur)
      emitBr(CondB);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    setBlock(EndB);
    return;
  }
  case Stmt::Kind::For: {
    const auto *For = static_cast<const ForStmt *>(S);
    genStmt(For->Init.get());
    IRBlock *CondB = newBlock();
    IRBlock *BodyB = newBlock();
    IRBlock *StepB = newBlock();
    IRBlock *EndB = newBlock();
    emitBr(CondB);
    setBlock(CondB);
    if (For->Cond)
      genBranchCond(For->Cond.get(), BodyB, EndB);
    else
      emitBr(BodyB);
    BreakTargets.push_back(EndB);
    ContinueTargets.push_back(StepB);
    setBlock(BodyB);
    genStmt(For->Body.get());
    if (Cur)
      emitBr(StepB);
    setBlock(StepB);
    if (For->Step)
      genExpr(For->Step.get());
    emitBr(CondB);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    setBlock(EndB);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    IRInstr Ret;
    Ret.Op = IROp::Ret;
    if (R->Value)
      Ret.Srcs = {genExpr(R->Value.get())};
    emit(std::move(Ret));
    Cur = nullptr;
    return;
  }
  case Stmt::Kind::Break:
    if (!BreakTargets.empty())
      emitBr(BreakTargets.back());
    return;
  case Stmt::Kind::Continue:
    if (!ContinueTargets.empty())
      emitBr(ContinueTargets.back());
    return;
  case Stmt::Kind::ExprStmt: {
    const Expr *E = static_cast<const ExprStmt *>(S)->E.get();
    if (E->getKind() == Expr::Kind::Call)
      genCall(static_cast<const CallExpr *>(E), /*WantValue=*/false);
    else
      genExpr(E);
    return;
  }
  case Stmt::Kind::Decl: {
    const auto *D = static_cast<const DeclStmt *>(S);
    VarDecl *V = D->Var.get();
    if (V->DeclType.isArray()) {
      int Slot = static_cast<int>(F->Slots.size());
      F->Slots.push_back(IRSlot{V->Name, V->DeclType.ArraySize, true});
      Bindings[V] = Binding{Binding::Kind::Slot, 0, Slot};
    } else if (V->AddressTaken) {
      int Slot = static_cast<int>(F->Slots.size());
      F->Slots.push_back(IRSlot{V->Name, 1, false});
      Bindings[V] = Binding{Binding::Kind::Slot, 0, Slot};
      if (V->LocalInit) {
        IRInstr St;
        St.Op = IROp::StSlot;
        St.Slot = Slot;
        St.Srcs = {genExpr(V->LocalInit.get())};
        emit(std::move(St));
      }
    } else {
      unsigned VR = F->newVReg();
      Bindings[V] = Binding{Binding::Kind::VReg, VR, -1};
      if (V->LocalInit)
        emitCopyTo(VR, genExpr(V->LocalInit.get()));
    }
    return;
  }
  case Stmt::Kind::Empty:
    return;
  }
}

unsigned IRGenImpl::genExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return emitConst(static_cast<const IntLitExpr *>(E)->Value);
  case Expr::Kind::StrLit: {
    IRInstr Addr;
    Addr.Op = IROp::AddrG;
    Addr.Sym = internString(static_cast<const StrLitExpr *>(E)->Value);
    return emitDef(std::move(Addr));
  }
  case Expr::Kind::VarRef:
    return genVarRefValue(static_cast<const VarRefExpr *>(E));
  case Expr::Kind::Unary:
    return genUnary(static_cast<const UnaryExpr *>(E));
  case Expr::Kind::Binary:
    return genBinary(static_cast<const BinaryExpr *>(E));
  case Expr::Kind::Assign:
    return genAssign(static_cast<const AssignExpr *>(E));
  case Expr::Kind::Index:
    return genIndex(static_cast<const IndexExpr *>(E));
  case Expr::Kind::Call:
    return genCall(static_cast<const CallExpr *>(E), /*WantValue=*/true);
  }
  return emitConst(0);
}

unsigned IRGenImpl::genVarRefValue(const VarRefExpr *E) {
  if (E->Func) {
    // Bare function name in a value context; only reachable when Sema
    // accepted it (it does not), so keep codegen robust.
    IRInstr Addr;
    Addr.Op = IROp::AddrG;
    Addr.Sym = E->Func->Name;
    return emitDef(std::move(Addr));
  }
  VarDecl *V = E->Var;
  assert(V && "unresolved variable reference");
  if (V->IsGlobal) {
    if (V->DeclType.isArray()) {
      IRInstr Addr;
      Addr.Op = IROp::AddrG;
      Addr.Sym = V->Name;
      return emitDef(std::move(Addr));
    }
    IRInstr Ld;
    Ld.Op = IROp::LdG;
    Ld.Sym = V->Name;
    return emitDef(std::move(Ld));
  }
  Binding &B = bindingOf(V);
  if (B.K == Binding::Kind::VReg)
    return B.VReg;
  if (V->DeclType.isArray()) {
    IRInstr Addr;
    Addr.Op = IROp::AddrSlot;
    Addr.Slot = B.Slot;
    return emitDef(std::move(Addr));
  }
  IRInstr Ld;
  Ld.Op = IROp::LdSlot;
  Ld.Slot = B.Slot;
  return emitDef(std::move(Ld));
}

unsigned IRGenImpl::genUnary(const UnaryExpr *E) {
  switch (E->Op) {
  case UnOp::Neg: {
    IRInstr I;
    I.Op = IROp::Neg;
    I.Srcs = {genExpr(E->Operand.get())};
    return emitDef(std::move(I));
  }
  case UnOp::BitNot: {
    IRInstr I;
    I.Op = IROp::Not;
    I.Srcs = {genExpr(E->Operand.get())};
    return emitDef(std::move(I));
  }
  case UnOp::LogNot:
    return genBoolValue(E);
  case UnOp::Deref: {
    IRInstr I;
    I.Op = IROp::LdPtr;
    I.Srcs = {genExpr(E->Operand.get())};
    return emitDef(std::move(I));
  }
  case UnOp::AddrOf: {
    const auto *Ref = static_cast<const VarRefExpr *>(E->Operand.get());
    if (Ref->Func) {
      IRInstr Addr;
      Addr.Op = IROp::AddrG;
      Addr.Sym = Ref->Func->Name;
      return emitDef(std::move(Addr));
    }
    VarDecl *V = Ref->Var;
    if (V->IsGlobal) {
      IRInstr Addr;
      Addr.Op = IROp::AddrG;
      Addr.Sym = V->Name;
      return emitDef(std::move(Addr));
    }
    Binding &B = bindingOf(V);
    assert(B.K == Binding::Kind::Slot && "address-taken local has no slot");
    IRInstr Addr;
    Addr.Op = IROp::AddrSlot;
    Addr.Slot = B.Slot;
    return emitDef(std::move(Addr));
  }
  }
  return emitConst(0);
}

unsigned IRGenImpl::genBoolValue(const Expr *E) {
  IRBlock *TrueB = newBlock();
  IRBlock *FalseB = newBlock();
  IRBlock *EndB = newBlock();
  unsigned Result = F->newVReg();
  genBranchCond(E, TrueB, FalseB);
  setBlock(TrueB);
  emitCopyTo(Result, emitConst(1));
  emitBr(EndB);
  setBlock(FalseB);
  emitCopyTo(Result, emitConst(0));
  emitBr(EndB);
  setBlock(EndB);
  return Result;
}

unsigned IRGenImpl::genBinary(const BinaryExpr *E) {
  if (E->Op == BinOp::LogAnd || E->Op == BinOp::LogOr)
    return genBoolValue(E);

  static const std::unordered_map<BinOp, BinKind> Map = {
      {BinOp::Add, BinKind::Add}, {BinOp::Sub, BinKind::Sub},
      {BinOp::Mul, BinKind::Mul}, {BinOp::Div, BinKind::Div},
      {BinOp::Rem, BinKind::Rem}, {BinOp::And, BinKind::And},
      {BinOp::Or, BinKind::Or},   {BinOp::Xor, BinKind::Xor},
      {BinOp::Shl, BinKind::Shl}, {BinOp::Shr, BinKind::Shr},
      {BinOp::Lt, BinKind::Lt},   {BinOp::Le, BinKind::Le},
      {BinOp::Gt, BinKind::Gt},   {BinOp::Ge, BinKind::Ge},
      {BinOp::Eq, BinKind::Eq},   {BinOp::Ne, BinKind::Ne},
  };
  unsigned L = genExpr(E->LHS.get());
  unsigned R = genExpr(E->RHS.get());
  IRInstr I;
  I.Op = IROp::Bin;
  I.BK = Map.at(E->Op);
  I.Srcs = {L, R};
  return emitDef(std::move(I));
}

unsigned IRGenImpl::genPointerElemAddr(unsigned Base, const Expr *Index) {
  unsigned Idx = genExpr(Index);
  IRInstr Add;
  Add.Op = IROp::Bin;
  Add.BK = BinKind::Add;
  Add.Srcs = {Base, Idx};
  return emitDef(std::move(Add));
}

unsigned IRGenImpl::genIndex(const IndexExpr *E) {
  // Array-typed bases use the fused element access; pointer bases go
  // through explicit address arithmetic and an indirect load.
  const Expr *Base = E->Base.get();
  if (Base->getKind() == Expr::Kind::VarRef) {
    const auto *Ref = static_cast<const VarRefExpr *>(Base);
    if (Ref->Var && Ref->Var->DeclType.isArray()) {
      VarDecl *V = Ref->Var;
      IRInstr Ld;
      Ld.Op = IROp::LdElem;
      Ld.Srcs = {genExpr(E->Index.get())};
      if (V->IsGlobal) {
        Ld.Sym = V->Name;
      } else {
        Ld.Slot = bindingOf(V).Slot;
      }
      return emitDef(std::move(Ld));
    }
  }
  unsigned Addr = genPointerElemAddr(genExpr(Base), E->Index.get());
  IRInstr Ld;
  Ld.Op = IROp::LdPtr;
  Ld.Srcs = {Addr};
  return emitDef(std::move(Ld));
}

unsigned IRGenImpl::genAssign(const AssignExpr *E) {
  const Expr *LHS = E->LHS.get();

  // Variable target.
  if (LHS->getKind() == Expr::Kind::VarRef) {
    const auto *Ref = static_cast<const VarRefExpr *>(LHS);
    VarDecl *V = Ref->Var;
    unsigned Value = genExpr(E->RHS.get());
    if (V->IsGlobal) {
      IRInstr St;
      St.Op = IROp::StG;
      St.Sym = V->Name;
      St.Srcs = {Value};
      emit(std::move(St));
      return Value;
    }
    Binding &B = bindingOf(V);
    if (B.K == Binding::Kind::VReg) {
      emitCopyTo(B.VReg, Value);
      return B.VReg;
    }
    IRInstr St;
    St.Op = IROp::StSlot;
    St.Slot = B.Slot;
    St.Srcs = {Value};
    emit(std::move(St));
    return Value;
  }

  // Element target.
  if (LHS->getKind() == Expr::Kind::Index) {
    const auto *Ix = static_cast<const IndexExpr *>(LHS);
    const Expr *Base = Ix->Base.get();
    if (Base->getKind() == Expr::Kind::VarRef) {
      const auto *Ref = static_cast<const VarRefExpr *>(Base);
      if (Ref->Var && Ref->Var->DeclType.isArray()) {
        VarDecl *V = Ref->Var;
        unsigned Idx = genExpr(Ix->Index.get());
        unsigned Value = genExpr(E->RHS.get());
        IRInstr St;
        St.Op = IROp::StElem;
        St.Srcs = {Idx, Value};
        if (V->IsGlobal)
          St.Sym = V->Name;
        else
          St.Slot = bindingOf(V).Slot;
        emit(std::move(St));
        return Value;
      }
    }
    unsigned Addr = genPointerElemAddr(genExpr(Base), Ix->Index.get());
    unsigned Value = genExpr(E->RHS.get());
    IRInstr St;
    St.Op = IROp::StPtr;
    St.Srcs = {Addr, Value};
    emit(std::move(St));
    return Value;
  }

  // *ptr target.
  if (LHS->getKind() == Expr::Kind::Unary &&
      static_cast<const UnaryExpr *>(LHS)->Op == UnOp::Deref) {
    unsigned Ptr =
        genExpr(static_cast<const UnaryExpr *>(LHS)->Operand.get());
    unsigned Value = genExpr(E->RHS.get());
    IRInstr St;
    St.Op = IROp::StPtr;
    St.Srcs = {Ptr, Value};
    emit(std::move(St));
    return Value;
  }

  // Sema reported the bad lvalue; evaluate the RHS for its effects.
  return genExpr(E->RHS.get());
}

unsigned IRGenImpl::genCall(const CallExpr *E, bool WantValue) {
  // Builtins.
  if (E->BuiltinKind == CallExpr::Builtin::Print ||
      E->BuiltinKind == CallExpr::Builtin::PrintC) {
    IRInstr I;
    I.Op = E->BuiltinKind == CallExpr::Builtin::Print ? IROp::Print
                                                      : IROp::PrintC;
    I.Srcs = {genExpr(E->Args[0].get())};
    emit(std::move(I));
    return WantValue ? emitConst(0) : 0;
  }
  if (E->BuiltinKind == CallExpr::Builtin::Prints) {
    IRInstr I;
    I.Op = IROp::Call;
    I.Sym = "__prints";
    I.Srcs = {genExpr(E->Args[0].get())};
    emit(std::move(I));
    return WantValue ? emitConst(0) : 0;
  }

  IRInstr I;
  if (E->IndirectVar) {
    I.Op = IROp::CallInd;
    VarRefExpr Ref(E->getLoc(), E->IndirectVar->Name);
    Ref.Var = E->IndirectVar;
    I.Srcs.push_back(genVarRefValue(&Ref));
  } else {
    I.Op = IROp::Call;
    I.Sym = E->CalleeName;
  }
  for (const ExprPtr &Arg : E->Args)
    I.Srcs.push_back(genExpr(Arg.get()));

  bool HasValue =
      E->IndirectVar || (E->DirectCallee && !E->DirectCallee->RetType.isVoid());
  if (WantValue && HasValue) {
    return emitDef(std::move(I));
  }
  emit(std::move(I));
  return WantValue ? emitConst(0) : 0;
}

void IRGenImpl::genBranchCond(const Expr *E, IRBlock *TrueB,
                              IRBlock *FalseB) {
  if (E->getKind() == Expr::Kind::Binary) {
    const auto *B = static_cast<const BinaryExpr *>(E);
    if (B->Op == BinOp::LogAnd) {
      IRBlock *Mid = newBlock();
      genBranchCond(B->LHS.get(), Mid, FalseB);
      setBlock(Mid);
      genBranchCond(B->RHS.get(), TrueB, FalseB);
      return;
    }
    if (B->Op == BinOp::LogOr) {
      IRBlock *Mid = newBlock();
      genBranchCond(B->LHS.get(), TrueB, Mid);
      setBlock(Mid);
      genBranchCond(B->RHS.get(), TrueB, FalseB);
      return;
    }
  }
  if (E->getKind() == Expr::Kind::Unary &&
      static_cast<const UnaryExpr *>(E)->Op == UnOp::LogNot) {
    genBranchCond(static_cast<const UnaryExpr *>(E)->Operand.get(), FalseB,
                  TrueB);
    return;
  }
  unsigned Cond = genExpr(E);
  emitCondBr(Cond, TrueB, FalseB);
}

std::unique_ptr<IRModule> ipra::generateIR(const ModuleAST &M,
                                           DiagnosticEngine &Diags) {
  auto Out = std::make_unique<IRModule>();
  IRGenImpl Impl(M, *Out, Diags);
  Impl.run();
  return Out;
}
