//===- Verifier.h - IR well-formedness checks ------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier for the IR, run after IR generation and after
/// every optimization pass in debug/test builds.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_VERIFIER_H
#define IPRA_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace ipra {

/// Checks structural invariants of \p F: every block ends in exactly one
/// terminator (and contains no interior terminators), branch targets and
/// slots are in range, operand counts match opcodes, and vreg numbers are
/// below NumVRegs. Returns a list of problems; empty means valid.
std::vector<std::string> verifyFunction(const IRFunction &F);

/// Verifies every function in \p M.
std::vector<std::string> verifyModule(const IRModule &M);

} // namespace ipra

#endif // IPRA_IR_VERIFIER_H
