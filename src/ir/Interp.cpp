//===- Interp.cpp - Reference IR interpreter --------------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include <cstdint>
#include <map>

using namespace ipra;

namespace {

/// Function "addresses" live far above any data address so that 'func'
/// values and pointers share the int32 value space without collision.
constexpr int32_t FuncBase = 1 << 28;

class Interpreter {
public:
  Interpreter(const std::vector<const IRModule *> &Modules,
              long long MaxSteps)
      : MaxSteps(MaxSteps) {
    // Lay out globals (common-symbol merge by qualified name) and
    // collect functions.
    for (const IRModule *M : Modules) {
      for (const IRGlobal &G : M->Globals) {
        auto [It, Inserted] = GlobalAddr.try_emplace(G.qualifiedName(), 0);
        if (Inserted) {
          It->second = static_cast<int32_t>(Memory.size());
          Memory.resize(Memory.size() + static_cast<size_t>(G.SizeWords),
                        0);
        }
        for (size_t W = 0;
             W < G.Init.size() && W < static_cast<size_t>(G.SizeWords);
             ++W)
          Memory[static_cast<size_t>(It->second) + W] = G.Init[W];
        if (!G.FuncInit.empty())
          PendingFuncInits.push_back({It->second, G.FuncInit, M});
      }
      for (const auto &F : M->Functions) {
        int Id = static_cast<int>(Functions.size());
        Functions.push_back(F.get());
        FunctionIds[F->qualifiedName()] = Id;
      }
    }
    // Patch function-address initializers now that every id exists.
    for (const auto &[Addr, Name, M] : PendingFuncInits) {
      int Id = resolveFunction(Name, M);
      if (Id >= 0)
        Memory[static_cast<size_t>(Addr)] = FuncBase + Id;
    }
  }

  IRRunResult run() {
    IRRunResult Result;
    auto It = FunctionIds.find("main");
    if (It == FunctionIds.end()) {
      Result.Error = "no main function";
      return Result;
    }
    int32_t Ret = 0;
    if (!call(It->second, {}, Ret, Result))
      return Result;
    Result.Ok = true;
    Result.ExitCode = Ret;
    return Result;
  }

private:
  /// Resolves \p Plain within \p M (statics first), then globally.
  int resolveFunction(const std::string &Plain, const IRModule *M) {
    auto It = FunctionIds.find(M->Name + ":" + Plain);
    if (It != FunctionIds.end())
      return It->second;
    It = FunctionIds.find(Plain);
    return It == FunctionIds.end() ? -1 : It->second;
  }
  int32_t resolveGlobalAddr(const std::string &Plain, const IRModule *M,
                            bool &Found) {
    auto It = GlobalAddr.find(M->Name + ":" + Plain);
    if (It == GlobalAddr.end())
      It = GlobalAddr.find(Plain);
    Found = It != GlobalAddr.end();
    return Found ? It->second : 0;
  }

  static int32_t evalBin(BinKind BK, int32_t L, int32_t R) {
    auto UL = static_cast<uint32_t>(L);
    auto UR = static_cast<uint32_t>(R);
    switch (BK) {
    case BinKind::Add:
      return static_cast<int32_t>(UL + UR);
    case BinKind::Sub:
      return static_cast<int32_t>(UL - UR);
    case BinKind::Mul:
      return static_cast<int32_t>(UL * UR);
    case BinKind::Div:
      return R == 0 ? 0 : (L == INT32_MIN && R == -1 ? L : L / R);
    case BinKind::Rem:
      return R == 0 ? 0 : (L == INT32_MIN && R == -1 ? 0 : L % R);
    case BinKind::And:
      return L & R;
    case BinKind::Or:
      return L | R;
    case BinKind::Xor:
      return L ^ R;
    case BinKind::Shl:
      return static_cast<int32_t>(UL << (UR & 31));
    case BinKind::Shr:
      return L >> (UR & 31);
    case BinKind::Lt:
      return L < R;
    case BinKind::Le:
      return L <= R;
    case BinKind::Gt:
      return L > R;
    case BinKind::Ge:
      return L >= R;
    case BinKind::Eq:
      return L == R;
    case BinKind::Ne:
      return L != R;
    }
    return 0;
  }

  bool load(int32_t Addr, int32_t &Value, IRRunResult &Result) {
    if (Addr < 0 || static_cast<size_t>(Addr) >= Memory.size()) {
      Result.Error =
          "memory load out of bounds (addr=" + std::to_string(Addr) + ")";
      return false;
    }
    Value = Memory[static_cast<size_t>(Addr)];
    return true;
  }
  bool store(int32_t Addr, int32_t Value, IRRunResult &Result) {
    if (Addr < 0 || static_cast<size_t>(Addr) >= Memory.size()) {
      Result.Error =
          "memory store out of bounds (addr=" + std::to_string(Addr) +
          ")";
      return false;
    }
    Memory[static_cast<size_t>(Addr)] = Value;
    return true;
  }

  /// Executes one function activation. Returns false on trap/limit.
  bool call(int FuncId, const std::vector<int32_t> &Args, int32_t &Ret,
            IRRunResult &Result) {
    if (++Depth > 10000) {
      Result.Error = "call depth limit exceeded";
      return false;
    }
    const IRFunction *F = Functions[static_cast<size_t>(FuncId)];
    const IRModule *M = ModuleOf(F);

    std::vector<int32_t> Regs(F->NumVRegs, 0);
    for (size_t A = 0; A < Args.size() && A < F->NumParams; ++A)
      Regs[A] = Args[A];

    // Frame slots live in a dedicated region appended per activation.
    std::vector<int32_t> SlotAddr(F->Slots.size());
    size_t FrameBase = Memory.size();
    for (size_t S = 0; S < F->Slots.size(); ++S) {
      SlotAddr[S] = static_cast<int32_t>(Memory.size());
      Memory.resize(Memory.size() +
                        static_cast<size_t>(F->Slots[S].SizeWords),
                    0);
    }

    bool Ok = runBlocks(F, M, Regs, SlotAddr, Ret, Result);
    Memory.resize(FrameBase); // Pop the frame.
    --Depth;
    return Ok;
  }

  const IRModule *ModuleOf(const IRFunction *F) {
    return ModuleByName.at(F->Module);
  }

  bool runBlocks(const IRFunction *F, const IRModule *M,
                 std::vector<int32_t> &Regs,
                 const std::vector<int32_t> &SlotAddr, int32_t &Ret,
                 IRRunResult &Result);

  long long MaxSteps;
  long long Steps = 0;
  int Depth = 0;
  std::vector<int32_t> Memory;
  std::map<std::string, int32_t> GlobalAddr;
  std::vector<const IRFunction *> Functions;
  std::map<std::string, int> FunctionIds;
  std::string Output;
  struct PendingInit {
    int32_t Addr;
    std::string Name;
    const IRModule *M;
  };
  std::vector<PendingInit> PendingFuncInits;

public:
  std::map<std::string, const IRModule *> ModuleByName;
  std::string takeOutput() { return std::move(Output); }
  long long steps() const { return Steps; }
};

bool Interpreter::runBlocks(const IRFunction *F, const IRModule *M,
                            std::vector<int32_t> &Regs,
                            const std::vector<int32_t> &SlotAddr,
                            int32_t &Ret, IRRunResult &Result) {
  int Block = 0;
  while (true) {
    const IRBlock *B = F->block(Block);
    for (const IRInstr &I : B->Instrs) {
      if (++Steps > MaxSteps) {
        Result.Error = "step limit exceeded";
        return false;
      }
      switch (I.Op) {
      case IROp::Const:
        Regs[I.Dst] = I.Imm;
        break;
      case IROp::Copy:
        Regs[I.Dst] = Regs[I.Srcs[0]];
        break;
      case IROp::Bin:
        Regs[I.Dst] = evalBin(I.BK, Regs[I.Srcs[0]], Regs[I.Srcs[1]]);
        break;
      case IROp::Neg:
        Regs[I.Dst] = static_cast<int32_t>(
            -static_cast<uint32_t>(Regs[I.Srcs[0]]));
        break;
      case IROp::Not:
        Regs[I.Dst] = ~Regs[I.Srcs[0]];
        break;
      case IROp::LdG:
      case IROp::StG:
      case IROp::AddrG: {
        bool IsFunc = false;
        int FuncId = -1;
        bool Found = false;
        int32_t Addr = resolveGlobalAddr(I.Sym, M, Found);
        if (!Found && I.Op == IROp::AddrG) {
          FuncId = resolveFunction(I.Sym, M);
          IsFunc = FuncId >= 0;
        }
        if (!Found && !IsFunc) {
          Result.Error = "unresolved symbol '" + I.Sym + "'";
          return false;
        }
        if (I.Op == IROp::LdG) {
          if (!load(Addr, Regs[I.Dst], Result))
            return false;
        } else if (I.Op == IROp::StG) {
          if (!store(Addr, Regs[I.Srcs[0]], Result))
            return false;
        } else {
          Regs[I.Dst] = IsFunc ? FuncBase + FuncId : Addr;
        }
        break;
      }
      case IROp::LdSlot:
        if (!load(SlotAddr[static_cast<size_t>(I.Slot)], Regs[I.Dst],
                  Result))
          return false;
        break;
      case IROp::StSlot:
        if (!store(SlotAddr[static_cast<size_t>(I.Slot)],
                   Regs[I.Srcs[0]], Result))
          return false;
        break;
      case IROp::LdElem:
      case IROp::StElem: {
        int32_t Base;
        if (!I.Sym.empty()) {
          bool Found = false;
          Base = resolveGlobalAddr(I.Sym, M, Found);
          if (!Found) {
            Result.Error = "unresolved array '" + I.Sym + "'";
            return false;
          }
        } else {
          Base = SlotAddr[static_cast<size_t>(I.Slot)];
        }
        int32_t Addr = static_cast<int32_t>(
            static_cast<uint32_t>(Base) +
            static_cast<uint32_t>(Regs[I.Srcs[0]]));
        if (I.Op == IROp::LdElem) {
          if (!load(Addr, Regs[I.Dst], Result))
            return false;
        } else if (!store(Addr, Regs[I.Srcs[1]], Result)) {
          return false;
        }
        break;
      }
      case IROp::LdPtr:
        if (!load(Regs[I.Srcs[0]], Regs[I.Dst], Result))
          return false;
        break;
      case IROp::StPtr:
        if (!store(Regs[I.Srcs[0]], Regs[I.Srcs[1]], Result))
          return false;
        break;
      case IROp::AddrSlot:
        Regs[I.Dst] = SlotAddr[static_cast<size_t>(I.Slot)];
        break;
      case IROp::Call:
      case IROp::CallInd: {
        int FuncId;
        size_t FirstArg = 0;
        if (I.Op == IROp::Call) {
          FuncId = resolveFunction(I.Sym, M);
          if (FuncId < 0) {
            Result.Error = "call to undefined '" + I.Sym + "'";
            return false;
          }
        } else {
          int32_t Target = Regs[I.Srcs[0]];
          FuncId = Target - FuncBase;
          FirstArg = 1;
          if (FuncId < 0 ||
              FuncId >= static_cast<int>(Functions.size())) {
            Result.Error = "indirect call to invalid target";
            return false;
          }
        }
        std::vector<int32_t> Args;
        for (size_t A = FirstArg; A < I.Srcs.size(); ++A)
          Args.push_back(Regs[I.Srcs[A]]);
        int32_t CallRet = 0;
        if (!call(FuncId, Args, CallRet, Result))
          return false;
        if (I.HasDst)
          Regs[I.Dst] = CallRet;
        break;
      }
      case IROp::Print:
        Output += std::to_string(Regs[I.Srcs[0]]);
        Output += '\n';
        break;
      case IROp::PrintC:
        Output += static_cast<char>(Regs[I.Srcs[0]] & 0xFF);
        break;
      case IROp::Ret:
        Ret = I.Srcs.empty() ? 0 : Regs[I.Srcs[0]];
        return true;
      case IROp::Br:
        Block = I.Target1;
        break;
      case IROp::CondBr:
        Block = Regs[I.Srcs[0]] != 0 ? I.Target1 : I.Target2;
        break;
      }
      if (I.isTerminator())
        break; // Move to the next block (Block already updated).
    }
  }
}

} // namespace

IRRunResult ipra::interpretIR(const std::vector<const IRModule *> &Modules,
                              long long MaxSteps) {
  Interpreter Interp(Modules, MaxSteps);
  for (const IRModule *M : Modules)
    Interp.ModuleByName[M->Name] = M;
  IRRunResult Result = Interp.run();
  Result.Output = Interp.takeOutput();
  Result.Steps = Interp.steps();
  return Result;
}
