//===- IR.h - Three-address intermediate representation --------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation produced by the compiler first phase
/// and consumed by the optimizer and second phase. It is a conventional
/// three-address form over an unbounded set of per-function virtual
/// registers, organized into basic blocks with explicit terminators.
///
/// Memory is symbolic at this level: loads/stores name a global, a stack
/// slot, an (array base, index) pair, or a computed pointer, so that the
/// second phase can classify each access the way the paper's measurements
/// need (singleton vs. element/indirect, Table 5) and so promoted global
/// accesses can be rewritten into register references.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_IR_IR_H
#define IPRA_IR_IR_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ipra {

/// IR opcodes (see the operand conventions on IRInstr).
enum class IROp : uint8_t {
  Const,    ///< Dst = Imm
  Copy,     ///< Dst = Srcs[0]
  Bin,      ///< Dst = Srcs[0] <BK> Srcs[1]
  Neg,      ///< Dst = -Srcs[0]
  Not,      ///< Dst = ~Srcs[0]
  LdG,      ///< Dst = load global Sym            (singleton access)
  StG,      ///< store global Sym = Srcs[0]       (singleton access)
  LdSlot,   ///< Dst = load stack slot Slot       (singleton access)
  StSlot,   ///< store slot Slot = Srcs[0]        (singleton access)
  LdElem,   ///< Dst = load base[Srcs[0]]; base is Sym or Slot (element)
  StElem,   ///< store base[Srcs[0]] = Srcs[1]               (element)
  LdPtr,    ///< Dst = load *Srcs[0]              (indirect access)
  StPtr,    ///< store *Srcs[0] = Srcs[1]         (indirect access)
  AddrG,    ///< Dst = address of global/function Sym
  AddrSlot, ///< Dst = address of stack slot Slot
  Call,     ///< [Dst =] call Sym(Srcs...)
  CallInd,  ///< [Dst =] call *Srcs[0](Srcs[1...])
  Print,    ///< print integer Srcs[0]
  PrintC,   ///< print character Srcs[0]
  Ret,      ///< return [Srcs[0]]
  Br,       ///< goto Target1
  CondBr,   ///< if Srcs[0] != 0 goto Target1 else goto Target2
};

/// Binary operation kinds for IROp::Bin. Comparison results are 0/1.
enum class BinKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
};

/// Returns true for the six comparison kinds.
bool isCompare(BinKind BK);

/// One three-address instruction.
struct IRInstr {
  IROp Op = IROp::Const;
  BinKind BK = BinKind::Add;
  bool HasDst = false;
  unsigned Dst = 0;           ///< Virtual register defined, if HasDst.
  std::vector<unsigned> Srcs; ///< Virtual registers used.
  int32_t Imm = 0;            ///< For Const.
  std::string Sym;  ///< Global/function name for LdG/StG/AddrG/Call/LdElem.
  int Slot = -1;    ///< Stack slot for LdSlot/StSlot/AddrSlot/LdElem base.
  int Target1 = -1; ///< Block id for Br/CondBr.
  int Target2 = -1; ///< Block id for CondBr false edge.

  bool isTerminator() const {
    return Op == IROp::Ret || Op == IROp::Br || Op == IROp::CondBr;
  }
  bool isCall() const { return Op == IROp::Call || Op == IROp::CallInd; }
  /// True if removing this instruction when Dst is dead is safe.
  bool isPure() const {
    switch (Op) {
    case IROp::Const:
    case IROp::Copy:
    case IROp::Bin:
    case IROp::Neg:
    case IROp::Not:
    case IROp::AddrG:
    case IROp::AddrSlot:
    case IROp::LdG:
    case IROp::LdSlot:
    case IROp::LdElem:
    case IROp::LdPtr:
      return true;
    default:
      return false;
    }
  }
  /// True if the instruction reads or writes memory.
  bool touchesMemory() const {
    switch (Op) {
    case IROp::LdG:
    case IROp::StG:
    case IROp::LdSlot:
    case IROp::StSlot:
    case IROp::LdElem:
    case IROp::StElem:
    case IROp::LdPtr:
    case IROp::StPtr:
      return true;
    default:
      return false;
    }
  }
  bool isStore() const {
    return Op == IROp::StG || Op == IROp::StSlot || Op == IROp::StElem ||
           Op == IROp::StPtr;
  }

  std::string toString() const;
};

/// A basic block: straight-line instructions ending in one terminator.
struct IRBlock {
  int Id = -1;
  std::vector<IRInstr> Instrs;

  const IRInstr &terminator() const {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block has no terminator");
    return Instrs.back();
  }
  bool hasTerminator() const {
    return !Instrs.empty() && Instrs.back().isTerminator();
  }
  /// Successor block ids in CFG order (true target first for CondBr).
  std::vector<int> successors() const;
};

/// A stack slot: an address-taken scalar local or a local array.
struct IRSlot {
  std::string Name;
  int SizeWords = 1;
  bool IsArray = false;
};

/// One function in IR form.
class IRFunction {
public:
  std::string Name;
  std::string Module;    ///< Module that defines this function.
  bool IsStatic = false; ///< Module-private (§7.4).
  bool AddressTaken = false;
  bool MakesIndirectCalls = false;
  bool ReturnsValue = false;
  unsigned NumParams = 0; ///< Params arrive in vregs 0..NumParams-1.
  unsigned NumVRegs = 0;
  std::vector<std::unique_ptr<IRBlock>> Blocks; ///< Blocks[0] is entry.
  std::vector<IRSlot> Slots;

  /// Allocates a fresh virtual register.
  unsigned newVReg() { return NumVRegs++; }
  /// Appends a new block and returns it.
  IRBlock *newBlock();
  IRBlock *entry() { return Blocks.front().get(); }
  const IRBlock *entry() const { return Blocks.front().get(); }
  IRBlock *block(int Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size());
    return Blocks[Id].get();
  }
  const IRBlock *block(int Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size());
    return Blocks[Id].get();
  }

  /// Qualified name used by the linker and program analyzer: statics are
  /// qualified as "module:name", exported symbols keep their plain name.
  std::string qualifiedName() const {
    return IsStatic ? Module + ":" + Name : Name;
  }

  std::string toString() const;
};

/// One global variable in IR form. Scalars have SizeWords == 1; a global
/// is eligible for interprocedural promotion only if it is an unaliased
/// scalar (§4.1.2).
struct IRGlobal {
  std::string Name;
  std::string Module;
  bool IsStatic = false;
  bool IsArray = false;
  bool AddressTaken = false; ///< Aliased; ineligible for promotion.
  int SizeWords = 1;
  std::vector<int32_t> Init;  ///< Initial words; zero-filled if shorter.
  std::string FuncInit; ///< Non-empty: initialize with address of function.

  std::string qualifiedName() const {
    return IsStatic ? Module + ":" + Name : Name;
  }
  bool isPromotableShape() const { return !IsArray && SizeWords == 1; }
};

/// One module (compilation unit) in IR form.
class IRModule {
public:
  std::string Name;
  std::vector<IRGlobal> Globals;
  std::vector<std::unique_ptr<IRFunction>> Functions;

  IRFunction *findFunction(const std::string &FuncName);
  IRGlobal *findGlobal(const std::string &GlobalName);

  std::string toString() const;
};

} // namespace ipra

#endif // IPRA_IR_IR_H
