//===- MachineFunction.cpp - Pre-link machine code container --------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineFunction.h"

#include <sstream>

using namespace ipra;

std::vector<int> MachineFunction::successors(int Id) const {
  // Lowering guarantees every block ends with B or BV; a conditional
  // transfer is a CB immediately before the trailing B.
  const MBlock &B = Blocks[Id];
  std::vector<int> Out;
  if (B.Instrs.empty())
    return Out;
  const MInstr &Last = B.Instrs.back();
  if (Last.Op == MOp::B) {
    Out.push_back(Last.A.LabelId);
    if (B.Instrs.size() >= 2) {
      const MInstr &Prev = B.Instrs[B.Instrs.size() - 2];
      if (Prev.Op == MOp::CB && Prev.C.LabelId != Last.A.LabelId)
        Out.push_back(Prev.C.LabelId);
    }
  }
  return Out;
}

std::string MachineFunction::toString() const {
  std::ostringstream OS;
  OS << "mfunc " << QualName << " (frame slots: " << FrameSlotWords.size()
     << ")\n";
  for (const MBlock &B : Blocks) {
    OS << ".L" << B.Id << ":\n";
    for (const MInstr &I : B.Instrs)
      OS << "  " << I.toString() << "\n";
  }
  return OS.str();
}
