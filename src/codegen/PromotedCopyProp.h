//===- PromotedCopyProp.h - Copy propagation for web registers -*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6.2 notes that promotion lets the second phase delete the base
/// register setup of promoted accesses and eliminate "certain register
/// copies involving promoted globals". This pass is that cleanup:
/// lowering turns a load of a promoted global into MOV v, Rg (Rg the
/// dedicated callee-saves register); here, uses of v are forwarded to Rg
/// while Rg is not redefined, and MOVs whose destinations die become
/// dead and are removed.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_PROMOTEDCOPYPROP_H
#define IPRA_CODEGEN_PROMOTEDCOPYPROP_H

#include "codegen/MachineFunction.h"
#include "target/Registers.h"

namespace ipra {

/// Forwards copies out of the promoted registers in \p PromotedRegs and
/// deletes the resulting dead copies. Returns the number of instructions
/// removed.
unsigned propagatePromotedCopies(MachineFunction &MF,
                                 RegMask PromotedRegs);

} // namespace ipra

#endif // IPRA_CODEGEN_PROMOTEDCOPYPROP_H
