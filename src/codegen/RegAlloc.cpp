//===- RegAlloc.cpp - Priority-based graph-coloring allocator -------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_set>

using namespace ipra;

namespace {

/// Per-round allocation state over one MachineFunction.
class Allocator {
public:
  Allocator(MachineFunction &MF, const ProcDirectives &Dir,
            const std::vector<long long> &BlockFreq,
            const CallClobberResolver &Clobbers)
      : MF(MF), Dir(Dir), BlockFreq(BlockFreq), Clobbers(Clobbers) {}

  RegAllocResult run();

private:
  unsigned numVirt() const { return MF.NextVReg - VirtRegBase; }
  unsigned virtIndex(unsigned Reg) const { return Reg - VirtRegBase; }
  long long freqOf(int Block) const {
    return Block < static_cast<int>(BlockFreq.size()) ? BlockFreq[Block]
                                                      : 1;
  }

  void computeLiveness();
  void buildInterference();
  bool colorAll();
  void rewriteAssigned();
  void spillVirtReg(unsigned V);

  MachineFunction &MF;
  const ProcDirectives &Dir;
  const std::vector<long long> &BlockFreq;
  const CallClobberResolver &Clobbers;

  /// Clobber mask of one call instruction.
  RegMask callClobber(const MInstr &I) const {
    if (I.Op == MOp::BL && Clobbers && I.A.isSym())
      return Clobbers(I.A.SymName) | pr32::maskOf(pr32::RP) |
             pr32::maskOf(pr32::RV);
    return pr32::callClobberMask();
  }

  // Liveness: per block, set of live regs (phys and virt) at exit.
  std::vector<std::set<unsigned>> LiveOut;

  // Interference results.
  std::vector<std::set<unsigned>> VirtAdj; ///< vreg index -> vreg indices.
  std::vector<RegMask> ForbiddenPhys;      ///< vreg index -> phys conflicts.
  /// Union of the clobber masks of every call the vreg is live across
  /// (0 = crosses no call at all).
  std::vector<RegMask> CrossClobber;
  std::vector<long long> Weight;
  std::vector<int> HintReg;        ///< Preferred phys reg or -1.
  std::vector<bool> Referenced;    ///< vreg appears in the code.
  std::unordered_set<unsigned> NoSpill; ///< Spill temps (vreg numbers).

  std::vector<int> Assignment; ///< vreg index -> phys reg or -1.
  std::vector<unsigned> ToSpill;

  RegMask UsedCalleeSet = 0; ///< Regs taken from the CALLEE set.
  RegMask UsedAnyCallee = 0; ///< Any callee-saves register used.
  unsigned SpillCount = 0;
};

} // namespace

void Allocator::computeLiveness() {
  size_t N = MF.Blocks.size();
  std::vector<std::set<unsigned>> LiveIn(N);
  LiveOut.assign(N, {});

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = N; BI-- > 0;) {
      std::set<unsigned> Out;
      for (int S : MF.successors(static_cast<int>(BI)))
        Out.insert(LiveIn[S].begin(), LiveIn[S].end());
      std::set<unsigned> In = Out;
      const MBlock &B = MF.Blocks[BI];
      std::vector<unsigned> Defs, Uses;
      for (auto II = B.Instrs.rbegin(); II != B.Instrs.rend(); ++II) {
        Defs.clear();
        Uses.clear();
        II->appendDefs(Defs);
        II->appendUses(Uses);
        for (unsigned D : Defs)
          In.erase(D);
        for (unsigned U : Uses)
          In.insert(U);
      }
      if (Out != LiveOut[BI] || In != LiveIn[BI]) {
        LiveOut[BI] = std::move(Out);
        LiveIn[BI] = std::move(In);
        Changed = true;
      }
    }
  }
}

void Allocator::buildInterference() {
  unsigned NV = numVirt();
  VirtAdj.assign(NV, {});
  ForbiddenPhys.assign(NV, 0);
  CrossClobber.assign(NV, 0);
  Weight.assign(NV, 0);
  HintReg.assign(NV, -1);
  Referenced.assign(NV, false);

  std::vector<unsigned> Defs, Uses;
  for (const MBlock &B : MF.Blocks) {
    std::set<unsigned> Live = LiveOut[B.Id];
    long long Freq = freqOf(B.Id);
    for (auto II = B.Instrs.rbegin(); II != B.Instrs.rend(); ++II) {
      const MInstr &I = *II;
      Defs.clear();
      Uses.clear();
      I.appendDefs(Defs);
      I.appendUses(Uses);

      for (unsigned R : Defs)
        if (isVirtReg(R)) {
          Referenced[virtIndex(R)] = true;
          Weight[virtIndex(R)] += Freq;
        }
      for (unsigned R : Uses)
        if (isVirtReg(R)) {
          Referenced[virtIndex(R)] = true;
          Weight[virtIndex(R)] += Freq;
        }

      // Calls: everything live after the call crosses it and must
      // avoid what the call may clobber.
      if (I.isCall()) {
        RegMask Clobber = callClobber(I);
        for (unsigned R : Live)
          if (isVirtReg(R))
            CrossClobber[virtIndex(R)] |= Clobber;
      }

      // Copy hints (MOV dst, src).
      if (I.Op == MOp::MOV && I.A.isReg() && I.B.isReg()) {
        unsigned Dst = I.A.RegNo, Src = I.B.RegNo;
        if (isVirtReg(Dst) && isPhysReg(Src))
          HintReg[virtIndex(Dst)] = static_cast<int>(Src);
        if (isVirtReg(Src) && isPhysReg(Dst))
          HintReg[virtIndex(Src)] = static_cast<int>(Dst);
      }

      // Interference: each def conflicts with everything live across the
      // def (minus the copy source for MOV, enabling coalesced colors).
      unsigned CopySrc = ~0u;
      if (I.Op == MOp::MOV && I.B.isReg())
        CopySrc = I.B.RegNo;
      for (unsigned D : Defs) {
        for (unsigned L : Live) {
          if (L == D || L == CopySrc)
            continue;
          if (isVirtReg(D) && isVirtReg(L)) {
            VirtAdj[virtIndex(D)].insert(virtIndex(L));
            VirtAdj[virtIndex(L)].insert(virtIndex(D));
          } else if (isVirtReg(D) && isPhysReg(L)) {
            ForbiddenPhys[virtIndex(D)] |= pr32::maskOf(L);
          } else if (isPhysReg(D) && isVirtReg(L)) {
            ForbiddenPhys[virtIndex(L)] |= pr32::maskOf(D);
          }
        }
      }

      for (unsigned D : Defs)
        Live.erase(D);
      for (unsigned U : Uses)
        Live.insert(U);
    }
  }
}

bool Allocator::colorAll() {
  unsigned NV = numVirt();
  Assignment.assign(NV, -1);
  ToSpill.clear();

  RegMask Reserved = Dir.promotedMask();
  RegMask FreePool = Dir.Free & ~Reserved;
  RegMask CalleePool = Dir.Callee & ~Reserved;
  // The caller pool honors the published budget on true caller-saves
  // registers (7.6.2); callee-saves scratch the CALLER augmentation
  // added is not part of the budget contract.
  RegMask CallerPool =
      (Dir.Caller & ~Reserved &
       (Dir.SelfCallerBudget | pr32::calleeSavedMask()));
  RegMask MSpillPool = (Dir.IsClusterRoot ? Dir.MSpill : RegMask(0)) &
                       ~Reserved;

  // Color in priority (weight) order.
  std::vector<unsigned> Order;
  for (unsigned V = 0; V < NV; ++V)
    if (Referenced[V])
      Order.push_back(V);
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return Weight[A] > Weight[B];
  });

  for (unsigned V : Order) {
    RegMask Conflicts = ForbiddenPhys[V];
    for (unsigned N : VirtAdj[V])
      if (Assignment[N] >= 0)
        Conflicts |= pr32::maskOf(static_cast<unsigned>(Assignment[N]));

    // Candidate pools in preference order. A range crossing calls may
    // additionally use true caller-saves registers that none of the
    // crossed calls clobber (7.6.2) - the cheapest option when present.
    std::vector<RegMask> Pools;
    if (CrossClobber[V]) {
      RegMask SafeCaller =
          CallerPool & pr32::callerSavedMask() & ~CrossClobber[V];
      Pools = {SafeCaller, FreePool, CalleePool & UsedCalleeSet,
               CalleePool};
    } else {
      Pools = {CallerPool, MSpillPool, FreePool,
               CalleePool & UsedCalleeSet, CalleePool};
    }

    int Chosen = -1;
    // Try the copy hint first if it is permitted by some pool.
    if (HintReg[V] >= 0) {
      RegMask HintMask = pr32::maskOf(static_cast<unsigned>(HintReg[V]));
      if (!(Conflicts & HintMask)) {
        for (RegMask Pool : Pools)
          if (Pool & HintMask) {
            Chosen = HintReg[V];
            break;
          }
      }
    }
    if (Chosen < 0) {
      for (RegMask Pool : Pools) {
        RegMask Avail = Pool & ~Conflicts;
        if (Avail) {
          Chosen = __builtin_ctz(Avail);
          break;
        }
      }
    }

    if (Chosen < 0) {
      assert(!NoSpill.count(VirtRegBase + V) &&
             "spill temp failed to color");
      ToSpill.push_back(V);
      continue;
    }

    Assignment[V] = Chosen;
    unsigned ChosenReg = static_cast<unsigned>(Chosen);
    if (pr32::isCalleeSaved(ChosenReg)) {
      UsedAnyCallee |= pr32::maskOf(ChosenReg);
      if (CalleePool & pr32::maskOf(ChosenReg) &&
          !(FreePool & pr32::maskOf(ChosenReg)) &&
          !(MSpillPool & pr32::maskOf(ChosenReg)))
        UsedCalleeSet |= pr32::maskOf(ChosenReg);
    }
  }
  return ToSpill.empty();
}

void Allocator::spillVirtReg(unsigned V) {
  unsigned Reg = VirtRegBase + V;
  int Slot = MF.newFrameSlot(1);
  ++SpillCount;

  for (MBlock &B : MF.Blocks) {
    std::vector<MInstr> Out;
    Out.reserve(B.Instrs.size());
    std::vector<unsigned> Defs, Uses;
    for (MInstr &I : B.Instrs) {
      Defs.clear();
      Uses.clear();
      I.appendDefs(Defs);
      I.appendUses(Uses);
      bool UsesReg = std::find(Uses.begin(), Uses.end(), Reg) != Uses.end();
      bool DefsReg = std::find(Defs.begin(), Defs.end(), Reg) != Defs.end();

      if (UsesReg) {
        unsigned T = MF.newVReg();
        NoSpill.insert(T);
        MInstr Ld;
        Ld.Op = MOp::LDW;
        Ld.MC = MemClass::StackScalar;
        Ld.A = MOperand::makeReg(T);
        Ld.B = MOperand::makeReg(pr32::SP);
        Ld.C = MOperand::makeFrame(Slot);
        Out.push_back(std::move(Ld));
        I.replaceRegUses(Reg, T);
      }
      if (DefsReg) {
        unsigned T = MF.newVReg();
        NoSpill.insert(T);
        I.replaceRegDefs(Reg, T);
        Out.push_back(std::move(I));
        MInstr St;
        St.Op = MOp::STW;
        St.MC = MemClass::StackScalar;
        St.A = MOperand::makeReg(T);
        St.B = MOperand::makeReg(pr32::SP);
        St.C = MOperand::makeFrame(Slot);
        Out.push_back(std::move(St));
        continue;
      }
      Out.push_back(std::move(I));
    }
    B.Instrs = std::move(Out);
  }
}

void Allocator::rewriteAssigned() {
  for (MBlock &B : MF.Blocks) {
    std::vector<MInstr> Out;
    Out.reserve(B.Instrs.size());
    for (MInstr &I : B.Instrs) {
      for (MOperand *Op : {&I.A, &I.B, &I.C}) {
        if (Op->isReg() && isVirtReg(Op->RegNo)) {
          int Phys = Assignment[virtIndex(Op->RegNo)];
          assert(Phys >= 0 && "unassigned virtual register survived");
          Op->RegNo = static_cast<unsigned>(Phys);
        }
      }
      // Drop no-op moves produced by coalesced assignments.
      if (I.Op == MOp::MOV && I.A.isReg() && I.B.isReg() &&
          I.A.RegNo == I.B.RegNo)
        continue;
      Out.push_back(std::move(I));
    }
    B.Instrs = std::move(Out);
  }
}

RegAllocResult Allocator::run() {
  RegAllocResult Result;
  for (int Round = 0; Round < 16; ++Round) {
    computeLiveness();
    buildInterference();
    if (colorAll()) {
      rewriteAssigned();
      Result.Success = true;
      Result.UsedCalleeToSave = UsedCalleeSet;
      Result.CalleeRegsUsed = pr32::maskCount(UsedAnyCallee);
      Result.SpillCount = SpillCount;
      return Result;
    }
    for (unsigned V : ToSpill)
      spillVirtReg(V);
    UsedCalleeSet = 0;
    UsedAnyCallee = 0;
  }
  return Result; // Success == false: allocation did not converge.
}

RegAllocResult ipra::allocateRegisters(
    MachineFunction &MF, const ProcDirectives &Dir,
    const std::vector<long long> &BlockFreq,
    const CallClobberResolver &Clobbers) {
  Allocator A(MF, Dir, BlockFreq, Clobbers);
  return A.run();
}
