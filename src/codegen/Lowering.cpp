//===- Lowering.cpp - IR to PR32 instruction selection --------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "codegen/Lowering.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ipra;

namespace {

Cond condForCompare(BinKind BK) {
  switch (BK) {
  case BinKind::Lt:
    return Cond::LT;
  case BinKind::Le:
    return Cond::LE;
  case BinKind::Gt:
    return Cond::GT;
  case BinKind::Ge:
    return Cond::GE;
  case BinKind::Eq:
    return Cond::EQ;
  case BinKind::Ne:
    return Cond::NE;
  default:
    assert(false && "not a comparison");
    return Cond::EQ;
  }
}

MOp mopForBin(BinKind BK) {
  switch (BK) {
  case BinKind::Add:
    return MOp::ADD;
  case BinKind::Sub:
    return MOp::SUB;
  case BinKind::Mul:
    return MOp::MUL;
  case BinKind::Div:
    return MOp::DIV;
  case BinKind::Rem:
    return MOp::REM;
  case BinKind::And:
    return MOp::AND;
  case BinKind::Or:
    return MOp::OR;
  case BinKind::Xor:
    return MOp::XOR;
  case BinKind::Shl:
    return MOp::SHL;
  case BinKind::Shr:
    return MOp::SHR;
  default:
    assert(false && "comparison has no direct ALU op");
    return MOp::ADD;
  }
}

class LoweringImpl {
public:
  LoweringImpl(const IRModule &M, const IRFunction &F,
               const ProcDirectives &Dir)
      : M(M), F(F), Dir(Dir) {}

  std::unique_ptr<MachineFunction> run();

private:
  /// The machine register carrying IR vreg \p V.
  unsigned mreg(unsigned V) const { return VirtRegBase + V; }

  /// Qualified name for a module-level symbol referenced as \p Plain.
  std::string qualify(const std::string &Plain) const;

  /// Returns the dedicated register if \p Plain names a global promoted
  /// in this procedure, or ~0u.
  unsigned promotedRegFor(const std::string &Plain) const;

  void emit(MInstr I) { Cur->Instrs.push_back(std::move(I)); }
  void emitMove(unsigned Dst, unsigned Src) {
    if (Dst == Src)
      return;
    MInstr I;
    I.Op = MOp::MOV;
    I.A = MOperand::makeReg(Dst);
    I.B = MOperand::makeReg(Src);
    emit(std::move(I));
  }
  /// Loads the address of global \p Plain into a fresh temp register.
  unsigned emitGlobalAddr(const std::string &Plain) {
    unsigned T = MF->newVReg();
    MInstr I;
    I.Op = MOp::ADDRG;
    I.A = MOperand::makeReg(T);
    I.B = MOperand::makeSym(qualify(Plain));
    emit(std::move(I));
    return T;
  }
  /// Computes the address of frame slot \p Slot into a fresh temp.
  unsigned emitSlotAddr(int Slot) {
    unsigned T = MF->newVReg();
    MInstr I;
    I.Op = MOp::ADD;
    I.A = MOperand::makeReg(T);
    I.B = MOperand::makeReg(pr32::SP);
    I.C = MOperand::makeFrame(Slot);
    emit(std::move(I));
    return T;
  }

  void lowerBlock(const IRBlock &B);
  void lowerInstr(const IRBlock &B, size_t Index, const IRInstr &I);
  void lowerCall(const IRInstr &I);
  void lowerCondBr(const IRBlock &B, const IRInstr &I);

  /// Index within the block of a compare fused into this block's
  /// terminating CondBr, or SIZE_MAX.
  size_t fusedCompareIndex(const IRBlock &B) const;

  const IRModule &M;
  const IRFunction &F;
  const ProcDirectives &Dir;
  std::unique_ptr<MachineFunction> MF;
  MBlock *Cur = nullptr;
  std::vector<unsigned> IRUseCounts;
  std::unordered_map<const IRBlock *, size_t> FusedCompare;
};

} // namespace

std::string LoweringImpl::qualify(const std::string &Plain) const {
  for (const IRGlobal &G : M.Globals)
    if (G.Name == Plain)
      return G.qualifiedName();
  for (const auto &Fn : M.Functions)
    if (Fn->Name == Plain)
      return Fn->qualifiedName();
  return Plain; // External symbol.
}

unsigned LoweringImpl::promotedRegFor(const std::string &Plain) const {
  // Directives use qualified names.
  for (const PromotedGlobal &P : Dir.Promoted) {
    // Compare against both the plain and qualified spelling.
    if (P.QualName == Plain)
      return P.Reg;
  }
  return ~0u;
}

size_t LoweringImpl::fusedCompareIndex(const IRBlock &B) const {
  if (!B.hasTerminator() || B.terminator().Op != IROp::CondBr)
    return SIZE_MAX;
  unsigned CondReg = B.terminator().Srcs[0];
  if (IRUseCounts[CondReg] != 1)
    return SIZE_MAX;
  // Find the defining compare inside this block.
  size_t DefIndex = SIZE_MAX;
  for (size_t I = 0; I + 1 < B.Instrs.size(); ++I) {
    const IRInstr &Instr = B.Instrs[I];
    if (Instr.HasDst && Instr.Dst == CondReg) {
      DefIndex = Instr.Op == IROp::Bin && isCompare(Instr.BK) ? I : SIZE_MAX;
    }
  }
  if (DefIndex == SIZE_MAX)
    return SIZE_MAX;
  // The compare's operands must not be redefined between the compare and
  // the terminator.
  const IRInstr &Cmp = B.Instrs[DefIndex];
  for (size_t I = DefIndex + 1; I + 1 < B.Instrs.size(); ++I) {
    const IRInstr &Instr = B.Instrs[I];
    if (!Instr.HasDst)
      continue;
    for (unsigned Src : Cmp.Srcs)
      if (Instr.Dst == Src)
        return SIZE_MAX;
  }
  return DefIndex;
}

std::unique_ptr<MachineFunction> LoweringImpl::run() {
  MF = std::make_unique<MachineFunction>();
  MF->Name = F.Name;
  MF->QualName = F.qualifiedName();
  MF->NextVReg = VirtRegBase + F.NumVRegs;

  // IR slots become the first frame slots, index-for-index.
  for (const IRSlot &S : F.Slots)
    MF->newFrameSlot(S.SizeWords);

  // Use counts drive compare/branch fusion.
  IRUseCounts.assign(F.NumVRegs, 0);
  for (const auto &B : F.Blocks)
    for (const IRInstr &I : B->Instrs)
      for (unsigned Src : I.Srcs)
        ++IRUseCounts[Src];

  for (const auto &B : F.Blocks) {
    MF->Blocks.push_back(MBlock{B->Id, {}});
  }

  for (const auto &B : F.Blocks) {
    Cur = &MF->Blocks[B->Id];
    if (B->Id == 0) {
      // Copy incoming arguments out of the argument registers.
      for (unsigned P = 0; P < F.NumParams && P < pr32::NumArgRegs; ++P)
        emitMove(mreg(P), pr32::FirstArgReg + P);
    }
    lowerBlock(*B);
  }
  return std::move(MF);
}

void LoweringImpl::lowerBlock(const IRBlock &B) {
  size_t Fused = fusedCompareIndex(B);
  for (size_t I = 0; I < B.Instrs.size(); ++I) {
    if (I == Fused)
      continue; // Folded into the terminating CB.
    lowerInstr(B, I, B.Instrs[I]);
  }
}

void LoweringImpl::lowerCall(const IRInstr &I) {
  MF->MakesCalls = true;
  bool Indirect = I.Op == IROp::CallInd;
  size_t FirstArg = Indirect ? 1 : 0;
  size_t NumArgs = I.Srcs.size() - FirstArg;
  assert(NumArgs <= pr32::NumArgRegs && "argument count checked by Sema");

  std::string QualCallee = Indirect ? std::string() : qualify(I.Sym);

  // §7.6.1 split-web wrap: calls that can reach another reference region
  // of a promoted global synchronize the dedicated register with memory
  // around the call.
  std::vector<const PromotedGlobal *> Wraps;
  for (const PromotedGlobal &P : Dir.Promoted) {
    bool Wrap = Indirect ? P.WrapIndirect
                         : std::find(P.WrapCallees.begin(),
                                     P.WrapCallees.end(),
                                     QualCallee) != P.WrapCallees.end();
    if (Wrap)
      Wraps.push_back(&P);
  }
  auto EmitSync = [this](const PromotedGlobal &P, bool IsStore) {
    MInstr Addr;
    Addr.Op = MOp::ADDRG;
    Addr.A = MOperand::makeReg(pr32::AT);
    Addr.B = MOperand::makeSym(P.QualName);
    emit(std::move(Addr));
    MInstr Mem;
    Mem.Op = IsStore ? MOp::STW : MOp::LDW;
    Mem.MC = MemClass::GlobalScalar;
    Mem.A = MOperand::makeReg(P.Reg);
    Mem.B = MOperand::makeReg(pr32::AT);
    Mem.C = MOperand::makeImm(0);
    emit(std::move(Mem));
  };
  for (const PromotedGlobal *P : Wraps)
    if (P->WebModifies)
      EmitSync(*P, /*IsStore=*/true);

  for (size_t A = 0; A < NumArgs; ++A)
    emitMove(pr32::FirstArgReg + static_cast<unsigned>(A),
             mreg(I.Srcs[FirstArg + A]));

  MInstr Call;
  Call.NumArgs = static_cast<uint8_t>(NumArgs);
  Call.HasResult = I.HasDst;
  if (Indirect) {
    Call.Op = MOp::BLR;
    Call.A = MOperand::makeReg(mreg(I.Srcs[0]));
  } else {
    Call.Op = MOp::BL;
    Call.A = MOperand::makeSym(QualCallee);
  }
  emit(std::move(Call));

  for (const PromotedGlobal *P : Wraps)
    EmitSync(*P, /*IsStore=*/false);

  if (I.HasDst)
    emitMove(mreg(I.Dst), pr32::RV);
}

void LoweringImpl::lowerCondBr(const IRBlock &B, const IRInstr &I) {
  size_t Fused = fusedCompareIndex(B);
  MInstr CB;
  CB.Op = MOp::CB;
  if (Fused != SIZE_MAX) {
    const IRInstr &Cmp = B.Instrs[Fused];
    CB.CC = condForCompare(Cmp.BK);
    CB.A = MOperand::makeReg(mreg(Cmp.Srcs[0]));
    CB.B = MOperand::makeReg(mreg(Cmp.Srcs[1]));
  } else {
    CB.CC = Cond::NE;
    CB.A = MOperand::makeReg(mreg(I.Srcs[0]));
    CB.B = MOperand::makeImm(0);
  }
  CB.C = MOperand::makeLabel(I.Target1);
  emit(std::move(CB));
  MInstr Br;
  Br.Op = MOp::B;
  Br.A = MOperand::makeLabel(I.Target2);
  emit(std::move(Br));
}

void LoweringImpl::lowerInstr(const IRBlock &B, size_t Index,
                              const IRInstr &I) {
  (void)Index;
  switch (I.Op) {
  case IROp::Const: {
    MInstr K;
    K.Op = MOp::LDI;
    K.A = MOperand::makeReg(mreg(I.Dst));
    K.B = MOperand::makeImm(I.Imm);
    emit(std::move(K));
    return;
  }
  case IROp::Copy:
    emitMove(mreg(I.Dst), mreg(I.Srcs[0]));
    return;
  case IROp::Bin: {
    if (isCompare(I.BK)) {
      MInstr C;
      C.Op = MOp::CMP;
      C.CC = condForCompare(I.BK);
      C.A = MOperand::makeReg(mreg(I.Dst));
      C.B = MOperand::makeReg(mreg(I.Srcs[0]));
      C.C = MOperand::makeReg(mreg(I.Srcs[1]));
      emit(std::move(C));
      return;
    }
    MInstr A;
    A.Op = mopForBin(I.BK);
    A.A = MOperand::makeReg(mreg(I.Dst));
    A.B = MOperand::makeReg(mreg(I.Srcs[0]));
    A.C = MOperand::makeReg(mreg(I.Srcs[1]));
    emit(std::move(A));
    return;
  }
  case IROp::Neg:
  case IROp::Not: {
    MInstr U;
    U.Op = I.Op == IROp::Neg ? MOp::NEG : MOp::NOT;
    U.A = MOperand::makeReg(mreg(I.Dst));
    U.B = MOperand::makeReg(mreg(I.Srcs[0]));
    emit(std::move(U));
    return;
  }
  case IROp::LdG: {
    std::string Qual = qualify(I.Sym);
    unsigned PR = promotedRegFor(Qual);
    if (PR != ~0u) {
      emitMove(mreg(I.Dst), PR);
      return;
    }
    unsigned Base = emitGlobalAddr(I.Sym);
    MInstr Ld;
    Ld.Op = MOp::LDW;
    Ld.MC = MemClass::GlobalScalar;
    Ld.A = MOperand::makeReg(mreg(I.Dst));
    Ld.B = MOperand::makeReg(Base);
    Ld.C = MOperand::makeImm(0);
    emit(std::move(Ld));
    return;
  }
  case IROp::StG: {
    std::string Qual = qualify(I.Sym);
    unsigned PR = promotedRegFor(Qual);
    if (PR != ~0u) {
      emitMove(PR, mreg(I.Srcs[0]));
      return;
    }
    unsigned Base = emitGlobalAddr(I.Sym);
    MInstr St;
    St.Op = MOp::STW;
    St.MC = MemClass::GlobalScalar;
    St.A = MOperand::makeReg(mreg(I.Srcs[0]));
    St.B = MOperand::makeReg(Base);
    St.C = MOperand::makeImm(0);
    emit(std::move(St));
    return;
  }
  case IROp::LdSlot: {
    MInstr Ld;
    Ld.Op = MOp::LDW;
    Ld.MC = MemClass::StackScalar;
    Ld.A = MOperand::makeReg(mreg(I.Dst));
    Ld.B = MOperand::makeReg(pr32::SP);
    Ld.C = MOperand::makeFrame(I.Slot);
    emit(std::move(Ld));
    return;
  }
  case IROp::StSlot: {
    MInstr St;
    St.Op = MOp::STW;
    St.MC = MemClass::StackScalar;
    St.A = MOperand::makeReg(mreg(I.Srcs[0]));
    St.B = MOperand::makeReg(pr32::SP);
    St.C = MOperand::makeFrame(I.Slot);
    emit(std::move(St));
    return;
  }
  case IROp::LdElem:
  case IROp::StElem: {
    bool IsLoad = I.Op == IROp::LdElem;
    unsigned Base =
        I.Sym.empty() ? emitSlotAddr(I.Slot) : emitGlobalAddr(I.Sym);
    unsigned Addr = MF->newVReg();
    MInstr Add;
    Add.Op = MOp::ADD;
    Add.A = MOperand::makeReg(Addr);
    Add.B = MOperand::makeReg(Base);
    Add.C = MOperand::makeReg(mreg(I.Srcs[0]));
    emit(std::move(Add));
    MInstr Mem;
    Mem.Op = IsLoad ? MOp::LDW : MOp::STW;
    Mem.MC = MemClass::Element;
    Mem.A = MOperand::makeReg(IsLoad ? mreg(I.Dst) : mreg(I.Srcs[1]));
    Mem.B = MOperand::makeReg(Addr);
    Mem.C = MOperand::makeImm(0);
    emit(std::move(Mem));
    return;
  }
  case IROp::LdPtr:
  case IROp::StPtr: {
    bool IsLoad = I.Op == IROp::LdPtr;
    MInstr Mem;
    Mem.Op = IsLoad ? MOp::LDW : MOp::STW;
    Mem.MC = MemClass::Indirect;
    Mem.A = MOperand::makeReg(IsLoad ? mreg(I.Dst) : mreg(I.Srcs[1]));
    Mem.B = MOperand::makeReg(mreg(I.Srcs[0]));
    Mem.C = MOperand::makeImm(0);
    emit(std::move(Mem));
    return;
  }
  case IROp::AddrG: {
    MInstr A;
    A.Op = MOp::ADDRG;
    A.A = MOperand::makeReg(mreg(I.Dst));
    A.B = MOperand::makeSym(qualify(I.Sym));
    emit(std::move(A));
    return;
  }
  case IROp::AddrSlot: {
    unsigned T = emitSlotAddr(I.Slot);
    emitMove(mreg(I.Dst), T);
    return;
  }
  case IROp::Call:
  case IROp::CallInd:
    lowerCall(I);
    return;
  case IROp::Print:
  case IROp::PrintC: {
    MInstr P;
    P.Op = I.Op == IROp::Print ? MOp::PRINT : MOp::PRINTC;
    P.A = MOperand::makeReg(mreg(I.Srcs[0]));
    emit(std::move(P));
    return;
  }
  case IROp::Ret: {
    if (!I.Srcs.empty())
      emitMove(pr32::RV, mreg(I.Srcs[0]));
    MInstr Ret;
    Ret.Op = MOp::BV;
    Ret.A = MOperand::makeReg(pr32::RP);
    emit(std::move(Ret));
    return;
  }
  case IROp::Br: {
    MInstr Br;
    Br.Op = MOp::B;
    Br.A = MOperand::makeLabel(I.Target1);
    emit(std::move(Br));
    return;
  }
  case IROp::CondBr:
    lowerCondBr(B, I);
    return;
  }
}

std::unique_ptr<MachineFunction> ipra::lowerFunction(
    const IRModule &M, const IRFunction &F, const ProcDirectives &Dir) {
  LoweringImpl Impl(M, F, Dir);
  return Impl.run();
}
