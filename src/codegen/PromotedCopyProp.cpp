//===- PromotedCopyProp.cpp - Copy propagation for web registers ----------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "codegen/PromotedCopyProp.h"

#include <map>
#include <vector>

using namespace ipra;

unsigned ipra::propagatePromotedCopies(MachineFunction &MF,
                                       RegMask PromotedRegs) {
  if (!PromotedRegs)
    return 0;

  // Pass 1 (block-local): forward uses of v to Rg while the fact
  // "v == Rg" holds. The fact dies when v or Rg is redefined - and at
  // calls, because a callee inside the same web may store the promoted
  // global, i.e. write Rg.
  std::vector<unsigned> Defs, Uses;
  for (MBlock &B : MF.Blocks) {
    std::map<unsigned, unsigned> Alias; // vreg -> promoted phys reg.
    for (MInstr &I : B.Instrs) {
      // Forward uses first (the instruction reads pre-state).
      for (auto &[V, Phys] : Alias)
        I.replaceRegUses(V, Phys);

      if (I.isCall()) {
        Alias.clear();
        continue;
      }

      Defs.clear();
      I.appendDefs(Defs);
      for (unsigned D : Defs) {
        // A def of a vreg invalidates its alias; a def of a promoted
        // register (a promoted store) invalidates every alias to it.
        Alias.erase(D);
        if (isPhysReg(D) && (PromotedRegs & pr32::maskOf(D)))
          for (auto It = Alias.begin(); It != Alias.end();)
            It = It->second == D ? Alias.erase(It) : std::next(It);
      }

      if (I.Op == MOp::MOV && I.A.isReg() && I.B.isReg() &&
          isVirtReg(I.A.RegNo) && isPhysReg(I.B.RegNo) &&
          (PromotedRegs & pr32::maskOf(I.B.RegNo)))
        Alias[I.A.RegNo] = I.B.RegNo;
      // A promoted store also establishes v == Rg for what follows.
      if (I.Op == MOp::MOV && I.A.isReg() && I.B.isReg() &&
          isPhysReg(I.A.RegNo) && isVirtReg(I.B.RegNo) &&
          (PromotedRegs & pr32::maskOf(I.A.RegNo)))
        Alias[I.B.RegNo] = I.A.RegNo;
    }
  }

  // Pass 2 (block-local): fold 'MOV Rg, v' into v's defining
  // instruction, so a promoted store lands directly in the web register
  // (g = g + 1 compiles to ADD Rg, Rg, 1 instead of ADD v, Rg, 1;
  // MOV Rg, v). Safe when v has exactly one def and one use (the MOV),
  // both in this block, and nothing between them touches Rg or makes a
  // call (an in-web callee reads and may write Rg).
  std::map<unsigned, unsigned> DefCounts, UseCounts0;
  for (MBlock &B : MF.Blocks)
    for (MInstr &I : B.Instrs) {
      Defs.clear();
      I.appendDefs(Defs);
      for (unsigned D : Defs)
        if (isVirtReg(D))
          ++DefCounts[D];
      Uses.clear();
      I.appendUses(Uses);
      for (unsigned U : Uses)
        if (isVirtReg(U))
          ++UseCounts0[U];
    }
  for (MBlock &B : MF.Blocks) {
    for (size_t MovIdx = 0; MovIdx < B.Instrs.size(); ++MovIdx) {
      MInstr &Mov = B.Instrs[MovIdx];
      if (Mov.Op != MOp::MOV || !Mov.A.isReg() || !Mov.B.isReg() ||
          !isPhysReg(Mov.A.RegNo) || !isVirtReg(Mov.B.RegNo) ||
          !(PromotedRegs & pr32::maskOf(Mov.A.RegNo)))
        continue;
      unsigned Rg = Mov.A.RegNo, V = Mov.B.RegNo;
      if (DefCounts[V] != 1 || UseCounts0[V] != 1)
        continue;
      for (size_t J = MovIdx; J-- > 0;) {
        MInstr &Prev = B.Instrs[J];
        Defs.clear();
        Prev.appendDefs(Defs);
        bool DefinesV = false, TouchesRg = false;
        for (unsigned D : Defs) {
          DefinesV |= D == V;
          TouchesRg |= D == Rg;
        }
        if (DefinesV) {
          if (Prev.isCall() || Defs.size() != 1)
            break;
          Prev.replaceRegDefs(V, Rg);
          // Turn the MOV into a self-copy; the sweep below drops it.
          Mov.B.RegNo = Rg;
          break;
        }
        Uses.clear();
        Prev.appendUses(Uses);
        for (unsigned U : Uses)
          TouchesRg |= U == Rg;
        if (TouchesRg || Prev.isCall())
          break;
      }
    }
  }

  // Pass 3: remove MOV v, Rg whose destination is now fully dead
  // (no remaining use of v anywhere) and self-copies left by pass 2.
  std::map<unsigned, unsigned> UseCounts;
  for (MBlock &B : MF.Blocks)
    for (MInstr &I : B.Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (unsigned U : Uses)
        if (isVirtReg(U))
          ++UseCounts[U];
    }

  unsigned Removed = 0;
  for (MBlock &B : MF.Blocks) {
    std::vector<MInstr> Kept;
    Kept.reserve(B.Instrs.size());
    for (MInstr &I : B.Instrs) {
      bool DeadCopy = I.Op == MOp::MOV && I.A.isReg() && I.B.isReg() &&
                      isVirtReg(I.A.RegNo) && isPhysReg(I.B.RegNo) &&
                      (PromotedRegs & pr32::maskOf(I.B.RegNo)) &&
                      UseCounts.find(I.A.RegNo) == UseCounts.end();
      bool SelfCopy = I.Op == MOp::MOV && I.A.isReg() && I.B.isReg() &&
                      I.A.RegNo == I.B.RegNo;
      if (DeadCopy || SelfCopy) {
        ++Removed;
        continue;
      }
      Kept.push_back(std::move(I));
    }
    B.Instrs = std::move(Kept);
  }
  return Removed;
}
