//===- CodeGen.h - Per-function second-phase code generation ---*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler second phase's back end for one function: instruction
/// selection, directive-driven register allocation, frame lowering, and
/// flattening into a relocatable ObjFunction.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_CODEGEN_H
#define IPRA_CODEGEN_CODEGEN_H

#include "codegen/Frame.h"
#include "codegen/RegAlloc.h"
#include "ir/IR.h"
#include "link/Object.h"
#include "target/Directives.h"

namespace ipra {

/// Result of compiling one function to machine code.
struct CodeGenResult {
  bool Success = false;
  ObjFunction Obj;
  RegAllocResult RA;
  FrameInfo Frame;
  /// Caller-saves registers (plus RP/RV) the emitted code writes; the
  /// first phase records this as the procedure's caller-saves budget for
  /// the §7.6.2 extension.
  RegMask CallerRegsWritten = 0;
};

/// Compiles \p F of module \p M under \p Dir. Block frequencies for the
/// allocator's priorities are derived from the function's loop nesting.
/// \p Clobbers optionally resolves per-callee clobber masks (§7.6.2).
CodeGenResult generateCode(const IRModule &M, const IRFunction &F,
                           const ProcDirectives &Dir,
                           const CallClobberResolver &Clobbers = {});

} // namespace ipra

#endif // IPRA_CODEGEN_CODEGEN_H
