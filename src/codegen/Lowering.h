//===- Lowering.h - IR to PR32 instruction selection -----------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers optimized IR to PR32 machine code over virtual registers.
/// Interprocedural promotion directives are applied here: accesses to a
/// promoted global become register moves involving its dedicated
/// callee-saves register (§5), and no ADDRG/LDW/STW is emitted for them.
/// Comparisons feeding a conditional branch fuse into PR32's
/// compare-and-branch (CB) when safe.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_LOWERING_H
#define IPRA_CODEGEN_LOWERING_H

#include "codegen/MachineFunction.h"
#include "ir/IR.h"
#include "target/Directives.h"

#include <memory>

namespace ipra {

/// Lowers \p F (a function of \p M) to machine code, applying the
/// promotion directives in \p Directives. The caller runs register
/// allocation and frame finalization afterwards.
std::unique_ptr<MachineFunction> lowerFunction(const IRModule &M,
                                               const IRFunction &F,
                                               const ProcDirectives &Dir);

} // namespace ipra

#endif // IPRA_CODEGEN_LOWERING_H
