//===- CodeGen.cpp - Per-function second-phase code generation ------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"

#include "codegen/Lowering.h"
#include "codegen/PromotedCopyProp.h"
#include "ir/CFG.h"

#include <cassert>

using namespace ipra;

CodeGenResult ipra::generateCode(const IRModule &M, const IRFunction &F,
                                 const ProcDirectives &Dir,
                                 const CallClobberResolver &Clobbers) {
  CodeGenResult Result;

  // Loop-nesting frequencies for allocation priorities.
  CFGInfo CFG(F);
  std::vector<long long> BlockFreq(F.Blocks.size(), 1);
  for (const auto &B : F.Blocks)
    if (CFG.isReachable(B->Id))
      BlockFreq[B->Id] = CFG.blockFrequency(B->Id);

  auto MF = lowerFunction(M, F, Dir);
  propagatePromotedCopies(*MF, Dir.promotedMask());
  Result.RA = allocateRegisters(*MF, Dir, BlockFreq, Clobbers);
  if (!Result.RA.Success)
    return Result;
  Result.Frame = finalizeFrame(*MF, Dir, Result.RA);

  // Flatten blocks into one code vector; Label operands become
  // function-relative instruction indices.
  std::vector<int> BlockStart(MF->Blocks.size(), 0);
  int Index = 0;
  for (const MBlock &B : MF->Blocks) {
    BlockStart[B.Id] = Index;
    Index += static_cast<int>(B.Instrs.size());
  }

  Result.Obj.QualName = MF->QualName;
  Result.Obj.Code.reserve(Index);
  for (MBlock &B : MF->Blocks) {
    for (MInstr &I : B.Instrs) {
      for (MOperand *Op : {&I.A, &I.B, &I.C}) {
        if (Op->isLabel()) {
          assert(Op->LabelId >= 0 &&
                 Op->LabelId < static_cast<int>(BlockStart.size()) &&
                 "branch to unknown block");
          Op->LabelId = BlockStart[Op->LabelId];
        }
      }
      Result.Obj.Code.push_back(std::move(I));
    }
  }

  // Record the caller-saves footprint of the final code (§7.6.2 input).
  std::vector<unsigned> Defs;
  for (const MInstr &I : Result.Obj.Code) {
    Defs.clear();
    I.appendDefs(Defs);
    for (unsigned D : Defs)
      Result.CallerRegsWritten |= pr32::maskOf(D);
  }
  // Incoming argument registers always count: every caller writes them
  // at the call site, and including them lets a future compile coalesce
  // parameters into their arrival registers without breaking the budget
  // contract.
  for (unsigned P = 0; P < F.NumParams && P < pr32::NumArgRegs; ++P)
    Result.CallerRegsWritten |= pr32::maskOf(pr32::FirstArgReg + P);
  Result.CallerRegsWritten &= pr32::callerSavedMask() |
                              pr32::maskOf(pr32::RP) |
                              pr32::maskOf(pr32::RV);

  Result.Success = true;
  return Result;
}
