//===- MachineFunction.h - Pre-link machine code container -----*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine code for one function between instruction selection and
/// object emission: basic blocks of MInstr over virtual and physical
/// registers, plus the frame-slot table that the frame finalizer turns
/// into SP offsets.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_MACHINEFUNCTION_H
#define IPRA_CODEGEN_MACHINEFUNCTION_H

#include "target/MachineInstr.h"

#include <string>
#include <vector>

namespace ipra {

/// One machine basic block; Id doubles as the branch label.
struct MBlock {
  int Id = -1;
  std::vector<MInstr> Instrs;
};

/// Machine code for one function plus frame bookkeeping.
class MachineFunction {
public:
  std::string Name;
  std::string QualName;
  std::vector<MBlock> Blocks;
  unsigned NextVReg = VirtRegBase;
  std::vector<int> FrameSlotWords; ///< Size of each frame slot.
  bool MakesCalls = false;

  unsigned newVReg() { return NextVReg++; }

  int newFrameSlot(int Words) {
    FrameSlotWords.push_back(Words);
    return static_cast<int>(FrameSlotWords.size()) - 1;
  }

  MBlock &block(int Id) { return Blocks[Id]; }

  /// Successor labels of a block, taken from its control transfers.
  std::vector<int> successors(int Id) const;

  std::string toString() const;
};

} // namespace ipra

#endif // IPRA_CODEGEN_MACHINEFUNCTION_H
