//===- Frame.h - Prologue/epilogue and frame lowering ----------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finalizes the stack frame after register allocation and inserts
/// prologue/epilogue code:
///
///  - registers from the CALLEE set that were used are saved/restored;
///  - at a cluster root, every MSPILL register is saved/restored whether
///    used or not (this is the spill code motion payoff, §4.2.3);
///  - at web entry nodes, the dedicated register is saved, the promoted
///    global is loaded at entry and stored back at exit (store omitted
///    when no web procedure modifies it, §5), and the register restored;
///  - the return pointer is saved when the function makes calls;
///  - Frame operands are rewritten to SP-relative offsets.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_FRAME_H
#define IPRA_CODEGEN_FRAME_H

#include "codegen/MachineFunction.h"
#include "codegen/RegAlloc.h"
#include "target/Directives.h"

namespace ipra {

/// Statistics from frame lowering, reported per function.
struct FrameInfo {
  int FrameWords = 0;
  RegMask SavedRegs = 0; ///< Callee-saves registers saved in the prologue.
  bool SavedRP = false;
};

/// Finalizes \p MF in place. \p RA is the allocation result (for the
/// used-CALLEE set); \p Dir supplies MSPILL and promoted-web duties.
FrameInfo finalizeFrame(MachineFunction &MF, const ProcDirectives &Dir,
                        const RegAllocResult &RA);

} // namespace ipra

#endif // IPRA_CODEGEN_FRAME_H
