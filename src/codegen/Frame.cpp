//===- Frame.cpp - Prologue/epilogue and frame lowering -------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "codegen/Frame.h"

#include <cassert>

using namespace ipra;

namespace {

MInstr makeFrameStore(unsigned Reg, int Slot) {
  MInstr St;
  St.Op = MOp::STW;
  St.MC = MemClass::StackScalar;
  St.A = MOperand::makeReg(Reg);
  St.B = MOperand::makeReg(pr32::SP);
  St.C = MOperand::makeFrame(Slot);
  return St;
}

MInstr makeFrameLoad(unsigned Reg, int Slot) {
  MInstr Ld;
  Ld.Op = MOp::LDW;
  Ld.MC = MemClass::StackScalar;
  Ld.A = MOperand::makeReg(Reg);
  Ld.B = MOperand::makeReg(pr32::SP);
  Ld.C = MOperand::makeFrame(Slot);
  return Ld;
}

MInstr makeSPAdjust(int Delta) {
  MInstr I;
  I.Op = MOp::ADD;
  I.A = MOperand::makeReg(pr32::SP);
  I.B = MOperand::makeReg(pr32::SP);
  I.C = MOperand::makeImm(Delta);
  return I;
}

/// ADDRG r1, sym  (the assembler temporary forms global addresses in
/// prologue/epilogue code).
MInstr makeGlobalAddr(const std::string &QualName) {
  MInstr I;
  I.Op = MOp::ADDRG;
  I.A = MOperand::makeReg(pr32::AT);
  I.B = MOperand::makeSym(QualName);
  return I;
}

MInstr makeGlobalLoad(unsigned Reg) {
  MInstr Ld;
  Ld.Op = MOp::LDW;
  Ld.MC = MemClass::GlobalScalar;
  Ld.A = MOperand::makeReg(Reg);
  Ld.B = MOperand::makeReg(pr32::AT);
  Ld.C = MOperand::makeImm(0);
  return Ld;
}

MInstr makeGlobalStore(unsigned Reg) {
  MInstr St;
  St.Op = MOp::STW;
  St.MC = MemClass::GlobalScalar;
  St.A = MOperand::makeReg(Reg);
  St.B = MOperand::makeReg(pr32::AT);
  St.C = MOperand::makeImm(0);
  return St;
}

} // namespace

FrameInfo ipra::finalizeFrame(MachineFunction &MF,
                              const ProcDirectives &Dir,
                              const RegAllocResult &RA) {
  FrameInfo Info;

  // Which callee-saves registers must this procedure save?
  RegMask ToSave = RA.UsedCalleeToSave;
  if (Dir.IsClusterRoot)
    ToSave |= Dir.MSpill; // Root spills MSPILL regardless of use.
  for (const PromotedGlobal &P : Dir.Promoted)
    if (P.IsEntry)
      ToSave |= pr32::maskOf(P.Reg); // Entry preserves the caller's value.

  // Frame layout: existing slots (IR locals + spills) first, then one
  // word per saved register, then the RP save slot.
  std::vector<unsigned> SaveRegs = pr32::maskRegs(ToSave);
  std::vector<int> SaveSlots;
  for (unsigned R : SaveRegs) {
    (void)R;
    SaveSlots.push_back(MF.newFrameSlot(1));
  }
  int RPSlot = -1;
  if (MF.MakesCalls)
    RPSlot = MF.newFrameSlot(1);

  // Assign offsets.
  std::vector<int> Offsets(MF.FrameSlotWords.size(), 0);
  int Offset = 0;
  for (size_t S = 0; S < MF.FrameSlotWords.size(); ++S) {
    Offsets[S] = Offset;
    Offset += MF.FrameSlotWords[S];
  }
  int FrameWords = Offset;

  // Rewrite Frame operands into SP offsets.
  for (MBlock &B : MF.Blocks)
    for (MInstr &I : B.Instrs)
      for (MOperand *Op : {&I.A, &I.B, &I.C})
        if (Op->isFrame()) {
          int Idx = Op->FrameIdx;
          assert(Idx >= 0 &&
                 Idx < static_cast<int>(Offsets.size()) &&
                 "frame index out of range");
          *Op = MOperand::makeImm(Offsets[Idx]);
        }

  // Build the prologue.
  std::vector<MInstr> Prologue;
  if (FrameWords > 0)
    Prologue.push_back(makeSPAdjust(-FrameWords));
  if (RPSlot >= 0)
    Prologue.push_back(makeFrameStore(pr32::RP, RPSlot));
  for (size_t S = 0; S < SaveRegs.size(); ++S)
    Prologue.push_back(makeFrameStore(SaveRegs[S], SaveSlots[S]));
  for (const PromotedGlobal &P : Dir.Promoted) {
    if (!P.IsEntry)
      continue;
    Prologue.push_back(makeGlobalAddr(P.QualName));
    Prologue.push_back(makeGlobalLoad(P.Reg));
  }
  // Resolve the Frame refs the prologue itself introduced.
  for (MInstr &I : Prologue)
    for (MOperand *Op : {&I.A, &I.B, &I.C})
      if (Op->isFrame())
        *Op = MOperand::makeImm(Offsets[Op->FrameIdx]);

  // Build the epilogue (mirror order).
  std::vector<MInstr> Epilogue;
  for (const PromotedGlobal &P : Dir.Promoted) {
    if (!P.IsEntry || !P.WebModifies)
      continue;
    Epilogue.push_back(makeGlobalAddr(P.QualName));
    Epilogue.push_back(makeGlobalStore(P.Reg));
  }
  for (size_t S = SaveRegs.size(); S-- > 0;)
    Epilogue.push_back(makeFrameLoad(SaveRegs[S], SaveSlots[S]));
  if (RPSlot >= 0)
    Epilogue.push_back(makeFrameLoad(pr32::RP, RPSlot));
  if (FrameWords > 0)
    Epilogue.push_back(makeSPAdjust(FrameWords));
  for (MInstr &I : Epilogue)
    for (MOperand *Op : {&I.A, &I.B, &I.C})
      if (Op->isFrame())
        *Op = MOperand::makeImm(Offsets[Op->FrameIdx]);

  // Insert the prologue at function entry.
  if (!MF.Blocks.empty()) {
    auto &Entry = MF.Blocks[0].Instrs;
    Entry.insert(Entry.begin(), Prologue.begin(), Prologue.end());
  }

  // Insert the epilogue before every return (BV through RP).
  for (MBlock &B : MF.Blocks) {
    std::vector<MInstr> Out;
    Out.reserve(B.Instrs.size());
    for (MInstr &I : B.Instrs) {
      bool IsReturn = I.Op == MOp::BV && I.A.isReg() &&
                      I.A.RegNo == pr32::RP;
      if (IsReturn)
        Out.insert(Out.end(), Epilogue.begin(), Epilogue.end());
      Out.push_back(std::move(I));
    }
    B.Instrs = std::move(Out);
  }

  Info.FrameWords = FrameWords;
  Info.SavedRegs = ToSave;
  Info.SavedRP = RPSlot >= 0;
  return Info;
}
