//===- RegAlloc.h - Priority-based graph-coloring allocator ----*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intraprocedural register allocator in the priority-based coloring
/// family ([Chow 84]), extended to obey the program analyzer's register
/// usage sets (§4.2.3 / §5):
///
///  - a live range that crosses a call may only receive a FREE or CALLEE
///    register (FREE preferred: the cluster root already spilled it);
///  - a live range that does not cross calls prefers CALLER, then MSPILL
///    (already spilled at this cluster root), then FREE, then CALLEE;
///  - registers dedicated to promoted global webs are excluded entirely;
///  - CALLEE registers actually used are reported so the frame code can
///    save/restore them; FREE/CALLER/MSPILL usage costs no spill code in
///    this procedure.
///
/// Live ranges that cannot be colored are spilled to frame slots and the
/// allocation repeats with short reload/store ranges.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CODEGEN_REGALLOC_H
#define IPRA_CODEGEN_REGALLOC_H

#include "codegen/MachineFunction.h"
#include "target/Directives.h"

#include <functional>
#include <string>
#include <vector>

namespace ipra {

/// Returns the clobber mask of a direct call to the named procedure.
/// Used by the §7.6.2 caller-saves pre-allocation extension: values may
/// stay in caller-saves registers across calls whose resolved mask does
/// not contain them. A null resolver (the default) means every call
/// clobbers the full caller-saves set.
using CallClobberResolver = std::function<RegMask(const std::string &)>;

/// Outcome of register allocation on one function.
struct RegAllocResult {
  bool Success = false;
  /// CALLEE-set registers the function uses (to be saved/restored by the
  /// frame code).
  RegMask UsedCalleeToSave = 0;
  /// Number of distinct callee-saves registers used for any purpose
  /// (the first phase's register-need estimate, §3).
  unsigned CalleeRegsUsed = 0;
  /// Live ranges spilled to memory.
  unsigned SpillCount = 0;
};

/// Allocates every virtual register in \p MF to a PR32 physical register
/// under \p Dir, spilling as needed. \p BlockFreq gives the loop-nesting
/// weight of each block (same block ids as MF); pass an empty vector for
/// uniform weights. \p Clobbers resolves per-callee clobber masks for
/// direct calls (§7.6.2); indirect calls always clobber everything.
RegAllocResult allocateRegisters(MachineFunction &MF,
                                 const ProcDirectives &Dir,
                                 const std::vector<long long> &BlockFreq,
                                 const CallClobberResolver &Clobbers = {});

} // namespace ipra

#endif // IPRA_CODEGEN_REGALLOC_H
