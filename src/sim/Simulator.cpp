//===- Simulator.cpp - PR32 interpreter and profiler -----------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "target/Registers.h"

#include <vector>

using namespace ipra;

namespace {

class Machine {
public:
  Machine(const Executable &Exe, long long Fuel, const CacheConfig &Cache)
      : Exe(Exe), Fuel(Fuel), Cache(Cache) {
    Memory.assign(Exe.memoryWords(), 0);
    for (size_t W = 0; W < Exe.DataInit.size(); ++W)
      Memory[W] = Exe.DataInit[W];
    Regs.assign(pr32::NumRegs, 0);
    Regs[pr32::SP] = Exe.memoryWords(); // Stack grows down from the top.
    CallerStack.push_back("__start");
    if (Cache.Enabled) {
      ICacheTags.assign(static_cast<size_t>(Cache.ICacheLines), -1);
      DCacheTags.assign(static_cast<size_t>(Cache.DCacheLines), -1);
    }
  }

  RunResult run();

private:
  int32_t readReg(unsigned R) const { return R == pr32::Zero ? 0 : Regs[R]; }
  void writeReg(unsigned R, int32_t V) {
    if (R != pr32::Zero)
      Regs[R] = V;
  }
  int32_t operandValue(const MOperand &Op) const {
    if (Op.isReg())
      return readReg(Op.RegNo);
    return Op.ImmVal;
  }
  bool evalCond(Cond CC, int32_t L, int32_t R) const {
    switch (CC) {
    case Cond::EQ:
      return L == R;
    case Cond::NE:
      return L != R;
    case Cond::LT:
      return L < R;
    case Cond::LE:
      return L <= R;
    case Cond::GT:
      return L > R;
    case Cond::GE:
      return L >= R;
    }
    return false;
  }
  int32_t evalALU(MOp Op, int32_t L, int32_t R) const {
    auto UL = static_cast<uint32_t>(L);
    auto UR = static_cast<uint32_t>(R);
    switch (Op) {
    case MOp::ADD:
      return static_cast<int32_t>(UL + UR);
    case MOp::SUB:
      return static_cast<int32_t>(UL - UR);
    case MOp::MUL:
      return static_cast<int32_t>(UL * UR);
    case MOp::DIV:
      return R == 0 ? 0 : (L == INT32_MIN && R == -1 ? L : L / R);
    case MOp::REM:
      return R == 0 ? 0 : (L == INT32_MIN && R == -1 ? 0 : L % R);
    case MOp::AND:
      return L & R;
    case MOp::OR:
      return L | R;
    case MOp::XOR:
      return L ^ R;
    case MOp::SHL:
      return static_cast<int32_t>(UL << (UR & 31));
    case MOp::SHR:
      return L >> (UR & 31);
    default:
      return 0;
    }
  }

  void trap(RunResult &Result, const std::string &Message) {
    Result.Trap = Message + " at pc=" + std::to_string(Pc);
    const ExeSymbol *Sym = Exe.symbolAt(Pc);
    if (Sym)
      Result.Trap += " (in " + Sym->QualName + ")";
  }

  /// Direct-mapped cache probe; returns true on a miss.
  static bool cacheProbe(std::vector<long long> &Tags, int Lines,
                         int LineWords, long long Addr) {
    long long Line = Addr / LineWords;
    size_t Index = static_cast<size_t>(Line % Lines);
    if (Tags[Index] == Line)
      return false;
    Tags[Index] = Line;
    return true;
  }

  const Executable &Exe;
  long long Fuel;
  CacheConfig Cache;
  std::vector<int32_t> Regs;
  std::vector<int32_t> Memory;
  std::vector<long long> ICacheTags, DCacheTags;
  int Pc = 0;
  std::vector<std::string> CallerStack;
};

RunResult Machine::run() {
  RunResult Result;
  RunStats &S = Result.Stats;

  while (true) {
    if (Pc < 0 || Pc >= static_cast<int>(Exe.Code.size())) {
      trap(Result, "pc out of code segment");
      return Result;
    }
    const MInstr &I = Exe.Code[Pc];
    S.Cycles += cycleCost(I.Op);
    ++S.Instructions;
    if (Cache.Enabled &&
        cacheProbe(ICacheTags, Cache.ICacheLines, Cache.LineWords, Pc)) {
      ++S.ICacheMisses;
      S.Cycles += Cache.MissPenalty;
    }
    if (S.Cycles > Fuel) {
      Result.OutOfFuel = true;
      return Result;
    }

    int Next = Pc + 1;
    switch (I.Op) {
    case MOp::LDI:
    case MOp::ADDRG: // Post-link both carry an immediate.
      writeReg(I.A.RegNo, I.B.ImmVal);
      break;
    case MOp::LDW:
    case MOp::STW: {
      int64_t Addr = static_cast<int64_t>(readReg(I.B.RegNo)) + I.C.ImmVal;
      if (Addr < 0 || Addr >= static_cast<int64_t>(Memory.size())) {
        trap(Result, "memory access out of bounds (addr=" +
                         std::to_string(Addr) + ")");
        return Result;
      }
      ++S.MemRefs;
      if (isSingleton(I.MC))
        ++S.SingletonRefs;
      if (Cache.Enabled &&
          cacheProbe(DCacheTags, Cache.DCacheLines, Cache.LineWords,
                     Addr)) {
        ++S.DCacheMisses;
        S.Cycles += Cache.MissPenalty;
      }
      if (I.Op == MOp::LDW)
        writeReg(I.A.RegNo, Memory[Addr]);
      else
        Memory[Addr] = readReg(I.A.RegNo);
      break;
    }
    case MOp::MOV:
      writeReg(I.A.RegNo, readReg(I.B.RegNo));
      break;
    case MOp::ADD:
    case MOp::SUB:
    case MOp::MUL:
    case MOp::DIV:
    case MOp::REM:
    case MOp::AND:
    case MOp::OR:
    case MOp::XOR:
    case MOp::SHL:
    case MOp::SHR:
      writeReg(I.A.RegNo,
               evalALU(I.Op, readReg(I.B.RegNo), operandValue(I.C)));
      break;
    case MOp::NEG:
      writeReg(I.A.RegNo, static_cast<int32_t>(
                              -static_cast<uint32_t>(readReg(I.B.RegNo))));
      break;
    case MOp::NOT:
      writeReg(I.A.RegNo, ~readReg(I.B.RegNo));
      break;
    case MOp::CMP:
      writeReg(I.A.RegNo,
               evalCond(I.CC, readReg(I.B.RegNo), operandValue(I.C)) ? 1
                                                                     : 0);
      break;
    case MOp::CB:
      if (evalCond(I.CC, readReg(I.A.RegNo), operandValue(I.B)))
        Next = I.C.ImmVal;
      break;
    case MOp::B:
      Next = I.A.ImmVal;
      break;
    case MOp::BL:
    case MOp::BLR: {
      int Target = I.Op == MOp::BL ? I.A.ImmVal : readReg(I.A.RegNo);
      writeReg(pr32::RP, Pc + 1);
      ++S.Calls;
      const ExeSymbol *Callee = Exe.symbolAt(Target);
      if (!Callee) {
        trap(Result, "call to invalid target " + std::to_string(Target));
        return Result;
      }
      ++Result.Profile.CallCounts[Callee->QualName];
      ++Result.Profile.EdgeCounts[{CallerStack.back(), Callee->QualName}];
      CallerStack.push_back(Callee->QualName);
      if (CallerStack.size() > 100000) {
        trap(Result, "call stack overflow");
        return Result;
      }
      Next = Target;
      break;
    }
    case MOp::BV:
      // Codegen emits BV only as a return.
      Next = readReg(I.A.RegNo);
      if (CallerStack.size() > 1)
        CallerStack.pop_back();
      break;
    case MOp::PRINT:
      Result.Output += std::to_string(readReg(I.A.RegNo));
      Result.Output += '\n';
      break;
    case MOp::PRINTC:
      Result.Output += static_cast<char>(readReg(I.A.RegNo) & 0xFF);
      break;
    case MOp::HALT:
      Result.Halted = true;
      Result.ExitCode = readReg(pr32::RV);
      return Result;
    case MOp::NOP:
      break;
    }
    Pc = Next;
  }
}

} // namespace

RunResult ipra::runExecutable(const Executable &Exe, long long FuelCycles,
                              const CacheConfig &Cache) {
  Machine M(Exe, FuelCycles, Cache);
  return M.run();
}
