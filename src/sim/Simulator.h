//===- Simulator.h - PR32 interpreter and profiler -------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprets a linked PR32 executable, counting what the paper's
/// evaluation measures: total cycles excluding cache penalties (Table 4)
/// and dynamic singleton memory references (Table 5). It also collects
/// the per-procedure and per-call-edge counts that play the role of the
/// paper's gprof profile data (§6.1, columns B and F).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_SIM_SIMULATOR_H
#define IPRA_SIM_SIMULATOR_H

#include "link/Object.h"

#include <cstdint>
#include <map>
#include <string>

namespace ipra {

/// Call counts gathered during a run, usable as profile input to the
/// program analyzer.
struct ProfileData {
  /// Invocations per procedure (qualified name).
  std::map<std::string, long long> CallCounts;
  /// Calls per (caller, callee) edge.
  std::map<std::pair<std::string, std::string>, long long> EdgeCounts;

  bool empty() const { return CallCounts.empty(); }
};

/// Optional cache model. The paper's simulator "did not model a cache,
/// so some of the benefits of interprocedural register allocation are
/// not accounted for" (§6.1); enabling this direct-mapped model lets the
/// cache-effects bench quantify that remark. Costs are charged on top of
/// the base cycle counts.
struct CacheConfig {
  bool Enabled = false;
  int ICacheLines = 128;
  int DCacheLines = 128;
  int LineWords = 8;      ///< Instructions or data words per line.
  int MissPenalty = 20;   ///< Extra cycles per miss.
};

/// Event counters for one run.
struct RunStats {
  long long Cycles = 0;
  long long Instructions = 0;
  long long MemRefs = 0;
  long long SingletonRefs = 0;
  long long Calls = 0;
  long long ICacheMisses = 0; ///< Zero unless the cache model is on.
  long long DCacheMisses = 0;
};

/// Outcome of executing a program.
struct RunResult {
  bool Halted = false;     ///< Reached HALT normally.
  bool OutOfFuel = false;  ///< Cycle budget exhausted.
  std::string Trap;        ///< Non-empty: execution fault description.
  int32_t ExitCode = 0;    ///< main's return value.
  std::string Output;      ///< Everything PRINT/PRINTC produced.
  RunStats Stats;
  ProfileData Profile;
};

/// Runs \p Exe for at most \p FuelCycles cycles, optionally with the
/// cache model enabled.
RunResult runExecutable(const Executable &Exe,
                        long long FuelCycles = 500'000'000,
                        const CacheConfig &Cache = {});

} // namespace ipra

#endif // IPRA_SIM_SIMULATOR_H
