//===- Analyzer.h - The program analyzer -----------------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program analyzer (§4): reads every module's summary file, builds
/// the program call graph, runs global variable promotion followed by
/// spill code motion, and emits the program database consumed by the
/// compiler second phase. By default the analyzer runs on compile-time
/// heuristics; dynamic profile data can be supplied instead (§6.1).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_ANALYZER_H
#define IPRA_CORE_ANALYZER_H

#include "core/Clusters.h"
#include "core/RegSets.h"
#include "core/WebColor.h"
#include "core/Webs.h"
#include "summary/Summary.h"
#include "target/Directives.h"

#include <map>
#include <string>
#include <vector>

namespace ipra {

/// Promotion strategy for the evaluation's configurations (§6.1).
enum class PromotionMode {
  None,    ///< No interprocedural promotion (columns A/B).
  Webs,    ///< K-register web coloring (columns C/F).
  Greedy,  ///< Greedy coloring (column D).
  Blanket, ///< Wall-style blanket promotion (column E).
};

/// Analyzer configuration.
struct AnalyzerOptions {
  bool SpillMotion = true;
  PromotionMode Promotion = PromotionMode::Webs;
  /// Registers reserved for web coloring (6 by default, §6.1).
  RegMask WebPool = pr32::defaultWebColoringPool();
  int BlanketCount = 6;
  WebOptions Webs;
  ClusterOptions Clusters;
  RegSetOptions RegSets;
  /// §7.6.2 extension: publish per-procedure caller-saves budgets and
  /// per-callee subtree clobber masks so callers can keep values live in
  /// caller-saves registers across calls that do not use them.
  bool CallerSavePropagation = false;
  /// §7.2: false when the analyzed modules are only part of the program
  /// (e.g. a library): only statics are promotable, and externally
  /// visible procedures join no web interior and no cluster.
  bool AssumeClosedWorld = true;
  /// Consume the summaries' points-to facts (escape verdicts, resolved
  /// indirect-call target sets). False ignores the fields entirely,
  /// reproducing the paper's conservative analysis; on fact-free
  /// summaries the output is identical either way.
  bool PointsTo = true;
  /// Threads for the parallelizable analyzer stages (per-global web
  /// discovery): 1 runs serially on the calling thread, 0 defers to
  /// IPRA_THREADS / the hardware count. The database is byte-identical
  /// at every value, so NumThreads enters no fingerprint.
  int NumThreads = 1;

  /// Named Table-4 presets (§6.1) for the analyzer side of a
  /// configuration. Columns B and F are A and C with profile data,
  /// which enters through CallProfile rather than these options.
  static AnalyzerOptions columnA(); ///< Spill code motion only.
  static AnalyzerOptions columnC(); ///< + 6-register web coloring.
  static AnalyzerOptions columnD(); ///< + greedy coloring.
  static AnalyzerOptions columnE(); ///< + blanket promotion.
};

/// The analyzer's observable statistics (the §6.2 narrative).
struct AnalyzerStats {
  int EligibleGlobals = 0;
  int TotalWebs = 0;
  int ConsideredWebs = 0;
  int ColoredWebs = 0;
  int SplitWebs = 0;    ///< Sub-webs produced by §7.6.1 splitting.
  int RemergedWebs = 0; ///< Webs produced by §7.6.1 re-merging.
  int NumClusters = 0;
  int TotalClusterNodes = 0; ///< Members + roots over all clusters.
  int MaxClusterSize = 0;
  /// Globals whose Aliased bit the escape verdicts refuted.
  int EscapesRefuted = 0;
  /// Indirect callers whose call edges were narrowed to proven sets.
  int IndirectCallersResolved = 0;

  // Sub-phase wall-clock breakdown (milliseconds), filled by
  // runAnalyzer; a cached analyzer run reports the producing run's
  // times.
  double RefSetsMs = 0;  ///< Call graph + L/P/C_REF dataflow.
  double WebsMs = 0;     ///< Web discovery (parallel per global).
  double ColoringMs = 0; ///< Web interference coloring.
  double ClustersMs = 0; ///< Cluster identification (§4.2).
  double RegSetsMs = 0;  ///< FREE/CALLER/CALLEE/MSPILL (Figure 6).

  double avgClusterSize() const {
    return NumClusters ? static_cast<double>(TotalClusterNodes) /
                             NumClusters
                       : 0.0;
  }
};

/// Version of the textual program-database format. Serialized files
/// carry it in a header line; readers reject other versions instead of
/// misparsing.
inline constexpr int DatabaseFormatVersion = 3;

/// The program database (§4.3): one directive record per procedure.
class ProgramDatabase {
public:
  /// Fingerprint of the pipeline configuration that produced this
  /// database (PipelineConfig::fingerprint()). Serialized in the header
  /// line; phase 2 rejects a database built under a different
  /// configuration. Empty when unknown (legacy files, hand-built DBs).
  std::string ConfigFingerprint;

  /// Directives for \p QualName; the standard convention when absent.
  ProcDirectives lookup(const std::string &QualName) const;

  void insert(const std::string &QualName, ProcDirectives Dir) {
    Procs[QualName] = std::move(Dir);
  }
  const std::map<std::string, ProcDirectives> &procs() const {
    return Procs;
  }

  /// Text serialization (one database file per program, §2). The first
  /// line is a header carrying DatabaseFormatVersion and
  /// ConfigFingerprint.
  std::string serialize() const;
  static bool deserialize(const std::string &Text, ProgramDatabase &Out,
                          std::string &Error);

  /// The part of the database that can affect one module's second-phase
  /// compile (its *database slice*): the directives of the module's own
  /// procedures plus, when \p IncludeCalleeClobbers (the §7.6.2
  /// caller-saves extension), the subtree clobber masks of its direct
  /// callees. Deterministic text — hash it to decide whether a database
  /// change forces the module's phase-2 recompile, the recompilation
  /// avoidance §6 calls for.
  std::string sliceFor(const ModuleSummary &Summary,
                       bool IncludeCalleeClobbers) const;

  /// Smart recompilation (§7.1: "source level changes need to be
  /// tracked carefully and can be very expensive"): the procedures
  /// whose directives differ between two databases. After a source
  /// edit, re-running phase 1 on the changed module and the analyzer on
  /// the summaries yields a new database; only the edited module plus
  /// the procedures named here need a phase-2 recompile - an unchanged
  /// database means the edit was allocation-neutral for every other
  /// module.
  static std::vector<std::string> diff(const ProgramDatabase &Old,
                                       const ProgramDatabase &New);

private:
  std::map<std::string, ProcDirectives> Procs;
};

/// Runs the analyzer over all summaries. \p Profile may be empty.
ProgramDatabase runAnalyzer(const std::vector<ModuleSummary> &Summaries,
                            const AnalyzerOptions &Options,
                            const CallProfile &Profile = {},
                            AnalyzerStats *Stats = nullptr);

} // namespace ipra

#endif // IPRA_CORE_ANALYZER_H
