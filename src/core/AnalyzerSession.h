//===- AnalyzerSession.h - Retained delta-analysis ownership ---*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ownership home for retained incremental-analysis state. The
/// DeltaAnalyzer keeps the previous run's call graph, refsets and webs
/// so a one-module edit re-analyzes only its damage region — which
/// makes it the hot per-program state a long-lived build service must
/// keep resident and serialize access to. AnalyzerSession wraps one
/// DeltaAnalyzer behind a mutex plus session counters:
///
///  - a Pipeline created without an explicit session owns a private
///    one, preserving the old behaviour (delta reuse scoped to the
///    Pipeline object's lifetime);
///  - the build service creates one session per program and hands it to
///    every Pipeline it (re)builds for that program, so the retained
///    state survives Pipeline reconstruction and concurrent requests
///    for the same program coalesce onto one analyzer state instead of
///    racing or re-priming.
///
/// The mutex serializes analyze() calls; the returned Outcome is a
/// value snapshot (database + stats), so callers never hold references
/// into state another request may overwrite.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_ANALYZERSESSION_H
#define IPRA_CORE_ANALYZERSESSION_H

#include "core/DeltaAnalyzer.h"

#include <mutex>

namespace ipra {

/// Cumulative per-session accounting, for service observability.
struct AnalyzerSessionCounters {
  unsigned long long Analyses = 0;  ///< analyze() calls served.
  unsigned long long DeltaRuns = 0; ///< Damage-region incremental runs.
  unsigned long long FullRuns = 0;  ///< Cold runs (first or fallback).
};

/// A lockable, shareable home for one program's retained delta state.
class AnalyzerSession {
public:
  /// Value snapshot of one analyze() call.
  struct Outcome {
    ProgramDatabase DB;
    AnalyzerStats Stats;
    DeltaStats Delta;
  };

  /// Runs the retained-state analyzer (incremental when the edit is
  /// expressible, cold otherwise). Thread-safe; concurrent callers
  /// serialize here, which is exactly the same-program coalescing the
  /// build service needs.
  Outcome analyze(const std::vector<ModuleSummary> &Summaries,
                  const AnalyzerOptions &Options,
                  const CallProfile &Profile) {
    std::lock_guard<std::mutex> Lock(M);
    Outcome Out;
    Out.DB = Delta.analyze(Summaries, Options, Profile);
    Out.Stats = Delta.stats();
    Out.Delta = Delta.deltaStats();
    ++Counters.Analyses;
    if (Out.Delta.Mode == DeltaMode::Incremental)
      ++Counters.DeltaRuns;
    else
      ++Counters.FullRuns;
    return Out;
  }

  bool primed() const {
    std::lock_guard<std::mutex> Lock(M);
    return Delta.primed();
  }

  AnalyzerSessionCounters counters() const {
    std::lock_guard<std::mutex> Lock(M);
    return Counters;
  }

private:
  mutable std::mutex M;
  DeltaAnalyzer Delta;
  AnalyzerSessionCounters Counters;
};

} // namespace ipra

#endif // IPRA_CORE_ANALYZERSESSION_H
