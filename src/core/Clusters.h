//===- Clusters.h - Spill-code-motion cluster identification ----*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cluster identification (§4.2.1-§4.2.2, Figure 5). A cluster is a set
/// of call-graph nodes such that
///   [1] one node R (the root) dominates every member;
///   [2] every non-root member's immediate predecessors are all in the
///       cluster;
///   [3] a node joins only the cluster of its nearest dominating root;
/// and no recursive call cycle lies within a cluster. Root candidates
/// are chosen by comparing incoming call counts against the call counts
/// to dominated immediate successors: hoisting save/restore code to R
/// pays off when the members are called more often than R itself.
///
/// A cluster's leaf may be the root of another cluster, which is what
/// lets MSPILL sets migrate upward across clusters (§4.2.4).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_CLUSTERS_H
#define IPRA_CORE_CLUSTERS_H

#include "callgraph/CallGraph.h"

#include <string>
#include <vector>

namespace ipra {

/// One identified cluster.
struct Cluster {
  int Root = -1;
  /// Members excluding the root; a member may itself be the root of a
  /// deeper cluster.
  std::vector<int> Members;
};

/// Cluster-identification knobs.
struct ClusterOptions {
  /// A root is accepted when (calls out to dominated successors) >
  /// Threshold * (incoming calls).
  double RootBenefitThreshold = 1.0;
  /// §7.2: false when analyzing a partial call graph - externally
  /// visible procedures may have unknown callers and cannot be cluster
  /// members (property [2] would be unverifiable).
  bool AssumeClosedWorld = true;
};

/// Identifies every cluster in \p CG.
std::vector<Cluster> identifyClusters(const CallGraph &CG,
                                      const ClusterOptions &Options = {});

/// Verification helper for tests: checks properties [1]-[3] and the
/// no-recursion rule; returns violations (empty = valid).
std::vector<std::string> checkClusterInvariants(
    const CallGraph &CG, const std::vector<Cluster> &Clusters);

} // namespace ipra

#endif // IPRA_CORE_CLUSTERS_H
