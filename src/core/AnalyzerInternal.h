//===- AnalyzerInternal.h - Shared analyzer pipeline stages ----*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer pipeline split into reusable stages. runAnalyzer wires
/// them together for a cold whole-program run; the delta analyzer
/// replays only the stages whose inputs lie in the damage region and
/// calls finishFromWebs on the spliced web list. Internal header — not
/// part of the public analyzer API.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_ANALYZERINTERNAL_H
#define IPRA_CORE_ANALYZERINTERNAL_H

#include "core/Analyzer.h"

namespace ipra {
namespace analyzer_detail {

/// The web options actually used for discovery: the user's knobs with
/// the analyzer-level closed-world assumption and thread count folded
/// in. The delta analyzer must re-discover damaged globals under
/// exactly these options to reproduce cold output.
WebOptions webOptionsFor(const AnalyzerOptions &Options);

/// Stage 1 of promotion: web discovery per Options.Promotion (empty
/// for None, blanket webs arrive pre-colored). Fills Stats.WebsMs.
std::vector<Web> discoverPromotionWebs(const CallGraph &CG,
                                       const RefSets &RS,
                                       const AnalyzerOptions &Options,
                                       AnalyzerStats &Stats);

/// Everything downstream of web discovery: interference coloring per
/// Options.Promotion, cluster identification, register-set computation,
/// §7.6.2 caller-saves propagation, and database assembly. \p Webs must
/// be uncolored (coloring assigns registers in place) except in Blanket
/// mode, whose discovery pre-colors. Taken by reference so a caller
/// retaining the webs across runs (the delta analyzer) avoids copying
/// the list; on return the webs carry the run's register assignments.
/// Fills the coloring/cluster/regset timings and counters of \p Stats.
ProgramDatabase finishFromWebs(const CallGraph &CG, const RefSets &RS,
                               std::vector<Web> &Webs,
                               const AnalyzerOptions &Options,
                               AnalyzerStats &Stats);

} // namespace analyzer_detail
} // namespace ipra

#endif // IPRA_CORE_ANALYZERINTERNAL_H
