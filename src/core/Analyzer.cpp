//===- Analyzer.cpp - The program analyzer ----------------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

#include "core/AnalyzerInternal.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <sstream>

using namespace ipra;

AnalyzerOptions AnalyzerOptions::columnA() {
  AnalyzerOptions O;
  O.SpillMotion = true;
  O.Promotion = PromotionMode::None;
  return O;
}

AnalyzerOptions AnalyzerOptions::columnC() {
  AnalyzerOptions O = columnA();
  O.Promotion = PromotionMode::Webs;
  return O;
}

AnalyzerOptions AnalyzerOptions::columnD() {
  AnalyzerOptions O = columnA();
  O.Promotion = PromotionMode::Greedy;
  return O;
}

AnalyzerOptions AnalyzerOptions::columnE() {
  AnalyzerOptions O = columnA();
  O.Promotion = PromotionMode::Blanket;
  return O;
}

ProcDirectives ProgramDatabase::lookup(const std::string &QualName) const {
  auto It = Procs.find(QualName);
  return It == Procs.end() ? ProcDirectives() : It->second;
}

//===----------------------------------------------------------------------===//
// Determinism contract. The analyzer's output (the program database
// text) must be byte-identical for a given input regardless of thread
// count, platform, or allocation behavior — slice hashes drive the
// recompilation avoidance, so any wobble forces spurious phase-2
// recompiles. The invariants, each enforced at its source:
//
//  [D1] NodeSet iterates members in ascending node id — exactly the
//       order std::set<int> would give. Every consumer of Web::Nodes
//       and cluster membership (entry-node order, priority
//       accumulation, directive emission) relies on it.
//  [D2] buildWebs discovers webs per global on a thread pool but
//       concatenates the per-global results in global-id order and
//       only then assigns ids; afterwards Webs[I].Id == I (asserted
//       below). Coloring order and the promoted-globals emission order
//       below both key off that numbering.
//  [D3] ProgramDatabase::Procs is an ordered map keyed by qualified
//       name: serialize() emits procedures in name order.
//  [D4] sliceFor() emits callee-clobber records from an explicitly
//       sorted, deduplicated vector — determinism is by construction,
//       never by container iteration order.
//
// Anything new the analyzer emits must pick one of these mechanisms.
//===----------------------------------------------------------------------===//

WebOptions ipra::analyzer_detail::webOptionsFor(
    const AnalyzerOptions &Options) {
  WebOptions WO = Options.Webs;
  WO.AssumeClosedWorld = Options.AssumeClosedWorld;
  WO.NumThreads = Options.NumThreads;
  return WO;
}

std::vector<Web> ipra::analyzer_detail::discoverPromotionWebs(
    const CallGraph &CG, const RefSets &RS, const AnalyzerOptions &Options,
    AnalyzerStats &Stats) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  std::vector<Web> Webs;
  switch (Options.Promotion) {
  case PromotionMode::None:
    return Webs;
  case PromotionMode::Webs:
  case PromotionMode::Greedy:
    Webs = buildWebs(CG, RS, webOptionsFor(Options));
    break;
  case PromotionMode::Blanket:
    Webs = buildBlanketWebs(CG, RS, Options.BlanketCount, Options.WebPool);
    break;
  }
  Stats.WebsMs =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  return Webs;
}

ProgramDatabase ipra::analyzer_detail::finishFromWebs(
    const CallGraph &CG, const RefSets &RS, std::vector<Web> &Webs,
    const AnalyzerOptions &Options, AnalyzerStats &LocalStats) {
  using Clock = std::chrono::steady_clock;
  auto MsSince = [](Clock::time_point T0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - T0)
        .count();
  };
  Clock::time_point T0;

  // --- Promotion coloring (§4.1.3) ----------------------------------------
  switch (Options.Promotion) {
  case PromotionMode::None:
    break;
  case PromotionMode::Webs: {
    T0 = Clock::now();
    WebColorStats WC = colorWebsKRegisters(Webs, CG, Options.WebPool);
    LocalStats.ColoringMs = MsSince(T0);
    LocalStats.TotalWebs = WC.TotalWebs;
    LocalStats.ConsideredWebs = WC.Considered;
    LocalStats.ColoredWebs = WC.Colored;
    for (const Web &W : Webs) {
      if (W.IsSplit)
        ++LocalStats.SplitWebs;
      if (W.IsRemerged)
        ++LocalStats.RemergedWebs;
    }
    break;
  }
  case PromotionMode::Greedy: {
    T0 = Clock::now();
    WebColorStats WC = colorWebsGreedy(Webs, CG);
    LocalStats.ColoringMs = MsSince(T0);
    LocalStats.TotalWebs = WC.TotalWebs;
    LocalStats.ConsideredWebs = WC.Considered;
    LocalStats.ColoredWebs = WC.Colored;
    break;
  }
  case PromotionMode::Blanket:
    // Blanket webs arrive pre-colored from discovery.
    LocalStats.TotalWebs = static_cast<int>(Webs.size());
    LocalStats.ConsideredWebs = LocalStats.TotalWebs;
    LocalStats.ColoredWebs = LocalStats.TotalWebs;
    break;
  }

  // --- Spill code motion (§4.2) -------------------------------------------
  std::vector<Cluster> Clusters;
  std::vector<ProcDirectives> Sets;
  if (Options.SpillMotion) {
    ClusterOptions CO = Options.Clusters;
    CO.AssumeClosedWorld = Options.AssumeClosedWorld;
    T0 = Clock::now();
    Clusters = identifyClusters(CG, CO);
    LocalStats.ClustersMs = MsSince(T0);
    T0 = Clock::now();
    Sets = computeRegisterSets(CG, Clusters, Webs, Options.RegSets);
    LocalStats.RegSetsMs = MsSince(T0);
    LocalStats.NumClusters = static_cast<int>(Clusters.size());
    for (const Cluster &C : Clusters) {
      int Size = static_cast<int>(C.Members.size()) + 1;
      LocalStats.TotalClusterNodes += Size;
      LocalStats.MaxClusterSize = std::max(LocalStats.MaxClusterSize, Size);
    }
  } else {
    Sets.assign(CG.size(), ProcDirectives());
    // Webs alone still reserve their registers below.
  }

  // --- §7.6.2 caller-saves pre-allocation (optional) -----------------------
  // Bottom-up over the SCC condensation: a procedure's subtree clobber is
  // its own caller-saves budget plus everything its callees may clobber.
  std::vector<RegMask> SelfBudget(CG.size(), pr32::callerSavedMask());
  std::vector<RegMask> SubtreeClobber(CG.size(), pr32::callClobberMask());
  if (Options.CallerSavePropagation) {
    for (const CGNode &Node : CG.nodes()) {
      // Unsummarized procedures stay worst-case.
      SelfBudget[Node.Id] = Node.HasSummary
                                ? (Node.CallerRegsUsed &
                                   pr32::callerSavedMask())
                                : pr32::callerSavedMask();
      SubtreeClobber[Node.Id] = SelfBudget[Node.Id] |
                                pr32::maskOf(pr32::RP) |
                                pr32::maskOf(pr32::RV);
    }
    // Fixpoint: cycles converge because masks only grow.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const CGNode &Node : CG.nodes())
        for (int S : Node.Succs) {
          RegMask New = SubtreeClobber[Node.Id] | SubtreeClobber[S];
          if (New != SubtreeClobber[Node.Id]) {
            SubtreeClobber[Node.Id] = New;
            Changed = true;
          }
        }
    }
  }

  // --- Assemble the database (§4.3) ---------------------------------------
  // Per-node occupancy index: which colored webs cover each node. One
  // pass over the webs replaces a webs x nodes membership scan, and
  // appending in web-id order ([D2]) reproduces the emission order the
  // old all-webs-per-node loop had.
  for (size_t I = 0; I < Webs.size(); ++I)
    assert(Webs[I].Id == static_cast<int>(I) &&
           "buildWebs must number webs by vector index [D2]");
  std::vector<std::vector<int>> PromotedAt(CG.size());
  for (const Web &W : Webs)
    if (W.AssignedReg >= 0)
      for (int N : W.Nodes)
        PromotedAt[N].push_back(W.Id);

  ProgramDatabase DB;
  for (const CGNode &Node : CG.nodes()) {
    ProcDirectives Dir = Sets[Node.Id];
    if (Options.CallerSavePropagation) {
      Dir.SelfCallerBudget = SelfBudget[Node.Id];
      Dir.SubtreeClobber = SubtreeClobber[Node.Id];
    }
    if (CG.indirectResolved(Node.Id)) {
      // Publish the proven targets so post-link checking can narrow
      // the machine-level BLR edges the same way the analyzer did.
      Dir.IndTargetsResolved = true;
      for (int T : CG.indirectTargetsOf(Node.Id))
        Dir.IndirectTargets.push_back(CG.node(T).QualName);
      std::sort(Dir.IndirectTargets.begin(), Dir.IndirectTargets.end());
    }
    for (int WebId : PromotedAt[Node.Id]) {
      const Web &W = Webs[WebId];
      PromotedGlobal P;
      P.QualName = RS.globalName(W.GlobalId);
      P.Reg = static_cast<unsigned>(W.AssignedReg);
      P.IsEntry = std::find(W.EntryNodes.begin(), W.EntryNodes.end(),
                            Node.Id) != W.EntryNodes.end();
      P.WebModifies = W.Modifies;
      if (W.IsSplit) {
        auto WrapIt = W.WrapEdges.find(Node.Id);
        if (WrapIt != W.WrapEdges.end())
          for (int S : WrapIt->second)
            P.WrapCallees.push_back(CG.node(S).QualName);
        P.WrapIndirect = W.WrapIndirect.count(Node.Id) != 0;
      }
      Dir.Promoted.push_back(std::move(P));
    }
    DB.insert(Node.QualName, std::move(Dir));
  }

  return DB;
}

ProgramDatabase ipra::runAnalyzer(
    const std::vector<ModuleSummary> &Summaries,
    const AnalyzerOptions &Options, const CallProfile &Profile,
    AnalyzerStats *Stats) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  CallGraph CG(Summaries, Profile, Options.PointsTo);
  RefSets RS(CG, Options.AssumeClosedWorld);

  AnalyzerStats LocalStats;
  LocalStats.EligibleGlobals = RS.numEligible();
  LocalStats.EscapesRefuted = static_cast<int>(CG.escapesRefuted());
  LocalStats.IndirectCallersResolved =
      static_cast<int>(CG.indirectCallersResolved());
  LocalStats.RefSetsMs =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();

  std::vector<Web> Webs =
      analyzer_detail::discoverPromotionWebs(CG, RS, Options, LocalStats);
  ProgramDatabase DB =
      analyzer_detail::finishFromWebs(CG, RS, Webs, Options, LocalStats);

  if (Stats)
    *Stats = LocalStats;
  return DB;
}

//===----------------------------------------------------------------------===//
// Database serialization.
//
//   ipra-db-format <version> config=<fingerprint|->
//   proc <qual> free=<hex> caller=<hex> callee=<hex> mspill=<hex> root=<0|1>
//   indtarget <qual>
//   promote <qual> reg=<n> entry=<0|1> modifies=<0|1>
//   end
//
// Version 3 added the points-to fields: indresolved=<0|1> on the proc
// line and one indtarget record per proven indirect-call target.
// Readers default them to the conservative values when absent so
// headerless legacy files keep parsing.
//===----------------------------------------------------------------------===//

std::vector<std::string>
ProgramDatabase::diff(const ProgramDatabase &Old,
                      const ProgramDatabase &New) {
  std::vector<std::string> Changed;
  for (const auto &[Name, Dir] : New.procs()) {
    auto It = Old.procs().find(Name);
    if (It == Old.procs().end() || !(It->second == Dir))
      Changed.push_back(Name);
  }
  for (const auto &[Name, Dir] : Old.procs())
    if (!New.procs().count(Name))
      Changed.push_back(Name);
  std::sort(Changed.begin(), Changed.end());
  return Changed;
}

namespace {

/// One proc's directive record in the database text format. Shared by
/// serialize() and sliceFor() so slice hashes track the file format.
void writeProcRecord(std::ostream &OS, const std::string &Name,
                     const ProcDirectives &Dir) {
  char Buf[16];
  auto Hex = [&Buf](RegMask M) {
    std::snprintf(Buf, sizeof(Buf), "%08x", M);
    return std::string(Buf);
  };
  OS << "proc " << Name << " free=" << Hex(Dir.Free)
     << " caller=" << Hex(Dir.Caller) << " callee=" << Hex(Dir.Callee)
     << " mspill=" << Hex(Dir.MSpill) << " root=" << Dir.IsClusterRoot
     << " budget=" << Hex(Dir.SelfCallerBudget)
     << " clobber=" << Hex(Dir.SubtreeClobber)
     << " indresolved=" << Dir.IndTargetsResolved << "\n";
  for (const std::string &T : Dir.IndirectTargets)
    OS << "indtarget " << T << "\n";
  for (const PromotedGlobal &P : Dir.Promoted) {
    OS << "promote " << P.QualName << " reg=" << P.Reg
       << " entry=" << P.IsEntry << " modifies=" << P.WebModifies
       << " wrapind=" << P.WrapIndirect << "\n";
    for (const std::string &Callee : P.WrapCallees)
      OS << "wrap " << Callee << "\n";
  }
  OS << "end\n";
}

} // namespace

std::string ProgramDatabase::serialize() const {
  std::ostringstream OS;
  OS << "ipra-db-format " << DatabaseFormatVersion << " config="
     << (ConfigFingerprint.empty() ? "-" : ConfigFingerprint) << "\n";
  for (const auto &[Name, Dir] : Procs)
    writeProcRecord(OS, Name, Dir);
  return OS.str();
}

std::string ProgramDatabase::sliceFor(const ModuleSummary &Summary,
                                      bool IncludeCalleeClobbers) const {
  std::ostringstream OS;
  // The module's own procedures, in module order. A procedure missing
  // from the database serializes as the standard convention, so a proc
  // appearing in or vanishing from the database changes the slice.
  for (const ProcSummary &P : Summary.Procs)
    writeProcRecord(OS, P.QualName, lookup(P.QualName));
  // With §7.6.2 caller-saves propagation, codegen also reads the
  // subtree clobber mask of every direct callee. The slice text is
  // hashed for recompilation avoidance, so the records are emitted
  // from an explicitly sorted, deduplicated list ([D4]) rather than
  // relying on a container's iteration order.
  if (IncludeCalleeClobbers) {
    std::vector<std::string> Callees;
    for (const ProcSummary &P : Summary.Procs)
      for (const CallSummary &C : P.Calls)
        Callees.push_back(C.QualCallee);
    std::sort(Callees.begin(), Callees.end());
    Callees.erase(std::unique(Callees.begin(), Callees.end()),
                  Callees.end());
    char Buf[16];
    for (const std::string &C : Callees) {
      std::snprintf(Buf, sizeof(Buf), "%08x", lookup(C).SubtreeClobber);
      OS << "clobber " << C << " " << Buf << "\n";
    }
  }
  return OS.str();
}

bool ProgramDatabase::deserialize(const std::string &Text,
                                  ProgramDatabase &Out, std::string &Error) {
  Out = ProgramDatabase();
  std::string CurName;
  ProcDirectives Cur;
  bool InProc = false;
  int LineNo = 0;

  auto HexField = [](const std::vector<std::string> &Tok,
                     const std::string &Key) -> RegMask {
    for (const std::string &T : Tok)
      if (startsWith(T, Key + "="))
        return static_cast<RegMask>(
            std::strtoul(T.substr(Key.size() + 1).c_str(), nullptr, 16));
    return 0;
  };
  auto NumFieldOf = [](const std::vector<std::string> &Tok,
                       const std::string &Key) -> long long {
    for (const std::string &T : Tok)
      if (startsWith(T, Key + "=")) {
        long long V = 0;
        parseInt(T.substr(Key.size() + 1), V);
        return V;
      }
    return 0;
  };

  for (const std::string &RawLine : split(Text, '\n')) {
    ++LineNo;
    std::string Line = trim(RawLine);
    if (Line.empty())
      continue;
    std::vector<std::string> Tok = split(Line, ' ');
    if (Tok[0] == "ipra-db-format") {
      // Header line: format version + producing-config fingerprint.
      // Files without one (pre-versioning) are accepted as legacy.
      long long Version = 0;
      if (Tok.size() < 2 || !parseInt(Tok[1], Version)) {
        Error = "line " + std::to_string(LineNo) +
                ": malformed database format header";
        return false;
      }
      if (Version != DatabaseFormatVersion) {
        Error = "database format version " + Tok[1] +
                " is not supported (this reader handles version " +
                std::to_string(DatabaseFormatVersion) +
                "); regenerate the database with this toolchain";
        return false;
      }
      for (const std::string &T : Tok)
        if (startsWith(T, "config=")) {
          std::string FP = T.substr(7);
          Out.ConfigFingerprint = FP == "-" ? "" : FP;
        }
    } else if (Tok[0] == "proc") {
      if (Tok.size() < 2) {
        Error = "line " + std::to_string(LineNo) + ": malformed proc";
        return false;
      }
      CurName = Tok[1];
      Cur = ProcDirectives();
      Cur.Free = HexField(Tok, "free");
      Cur.Caller = HexField(Tok, "caller");
      Cur.Callee = HexField(Tok, "callee");
      Cur.MSpill = HexField(Tok, "mspill");
      Cur.IsClusterRoot = NumFieldOf(Tok, "root");
      // Budget/clobber fields came in with the §7.6.2 extension; old
      // databases without them keep the permissive defaults.
      bool HasBudget = false, HasClobber = false;
      for (const std::string &T : Tok) {
        HasBudget |= startsWith(T, "budget=");
        HasClobber |= startsWith(T, "clobber=");
      }
      if (HasBudget)
        Cur.SelfCallerBudget = HexField(Tok, "budget");
      if (HasClobber)
        Cur.SubtreeClobber = HexField(Tok, "clobber");
      Cur.IndTargetsResolved = NumFieldOf(Tok, "indresolved");
      InProc = true;
    } else if (Tok[0] == "indtarget") {
      if (!InProc || Tok.size() < 2) {
        Error = "line " + std::to_string(LineNo) + ": stray indtarget";
        return false;
      }
      Cur.IndirectTargets.push_back(Tok[1]);
    } else if (Tok[0] == "promote") {
      if (!InProc || Tok.size() < 2) {
        Error = "line " + std::to_string(LineNo) + ": stray promote";
        return false;
      }
      PromotedGlobal P;
      P.QualName = Tok[1];
      P.Reg = static_cast<unsigned>(NumFieldOf(Tok, "reg"));
      P.IsEntry = NumFieldOf(Tok, "entry");
      P.WebModifies = NumFieldOf(Tok, "modifies");
      P.WrapIndirect = NumFieldOf(Tok, "wrapind");
      Cur.Promoted.push_back(std::move(P));
    } else if (Tok[0] == "wrap") {
      if (!InProc || Cur.Promoted.empty() || Tok.size() < 2) {
        Error = "line " + std::to_string(LineNo) + ": stray wrap";
        return false;
      }
      Cur.Promoted.back().WrapCallees.push_back(Tok[1]);
    } else if (Tok[0] == "end") {
      if (!InProc) {
        Error = "line " + std::to_string(LineNo) + ": stray end";
        return false;
      }
      Out.insert(CurName, std::move(Cur));
      InProc = false;
    } else {
      Error = "line " + std::to_string(LineNo) + ": unknown record '" +
              Tok[0] + "'";
      return false;
    }
  }
  return true;
}
