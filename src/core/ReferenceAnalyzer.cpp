//===- ReferenceAnalyzer.cpp - Seed-style analyzer oracle -------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
// The pre-scaling algorithms, kept as an equivalence oracle and perf
// baseline. Deliberately NOT refactored to share helpers with the
// optimized implementations: sharing would let a bug cancel itself out
// of the comparison.
//
//===----------------------------------------------------------------------===//

#include "core/ReferenceAnalyzer.h"

#include <algorithm>
#include <map>
#include <set>

using namespace ipra;
using ipra::reference::FixpointRefSets;

FixpointRefSets::FixpointRefSets(const CallGraph &CG, const RefSets &RS) {
  size_t N = CG.size();
  size_t E = static_cast<size_t>(RS.numEligible());
  PRef.assign(N, DynBitset(E));
  CRef.assign(N, DynBitset(E));
  if (E == 0)
    return;

  // P_REF: top-down fixpoint, visiting RPO order first and then any
  // nodes unreachable from the starts (the seed's convergence order).
  std::vector<int> Order = CG.rpo();
  for (int Node = 0; Node < CG.size(); ++Node)
    if (!CG.isReachable(Node))
      Order.push_back(Node);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Node : Order) {
      for (int P : CG.node(Node).Preds) {
        DynBitset In = PRef[P];
        In.unionWith(RS.lref(P));
        Changed |= PRef[Node].unionWith(In);
      }
    }
  }

  // C_REF: bottom-up fixpoint.
  Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      int Node = *It;
      for (int S : CG.node(Node).Succs) {
        DynBitset In = CRef[S];
        In.unionWith(RS.lref(S));
        Changed |= CRef[Node].unionWith(In);
      }
    }
  }
}

namespace {

constexpr long long PriorityCap = 1'000'000'000'000'000LL;

long long capAdd(long long A, long long B) {
  return std::min(PriorityCap, A + B);
}
long long capMul(long long A, long long B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > PriorityCap / B)
    return PriorityCap;
  return A * B;
}

/// Figure 2's Expand_Web on std::set.
void expandWeb(const CallGraph &CG, const RefSets &RS, int G,
               std::set<int> &W, int Seed) {
  std::vector<int> Stack = {Seed};
  while (!Stack.empty()) {
    int Q = Stack.back();
    Stack.pop_back();
    if (W.count(Q))
      continue;
    W.insert(Q);
    for (int S : CG.node(Q).Succs)
      if (!W.count(S) && (RS.cref(S).test(G) || RS.lref(S).test(G)))
        Stack.push_back(S);
  }
}

/// The repeat/until loop of Figure 2 on std::set.
void growWeb(const CallGraph &CG, const RefSets &RS, int G,
             std::set<int> &W, std::set<int> Seeds) {
  while (true) {
    for (int Q : Seeds)
      expandWeb(CG, RS, G, W, Q);
    std::set<int> NewSeeds;
    for (int Z : W) {
      bool Internal = false, External = false;
      for (int P : CG.node(Z).Preds) {
        if (W.count(P))
          Internal = true;
        else
          External = true;
      }
      if (Internal && External)
        for (int P : CG.node(Z).Preds)
          if (!W.count(P))
            NewSeeds.insert(P);
    }
    if (NewSeeds.empty())
      return;
    Seeds = std::move(NewSeeds);
  }
}

std::string moduleOfQualName(const std::string &QualName) {
  size_t Colon = QualName.find(':');
  return Colon == std::string::npos ? "" : QualName.substr(0, Colon);
}

void closeSplitWeb(const CallGraph &CG, std::set<int> &W) {
  while (true) {
    std::set<int> Absorb;
    for (int Z : W) {
      bool Internal = false, External = false;
      for (int P : CG.node(Z).Preds) {
        if (W.count(P))
          Internal = true;
        else
          External = true;
      }
      if (Internal && External)
        for (int P : CG.node(Z).Preds)
          if (!W.count(P))
            Absorb.insert(P);
    }
    if (Absorb.empty())
      return;
    W.insert(Absorb.begin(), Absorb.end());
  }
}

NodeSet toNodeSet(const std::set<int> &S) {
  NodeSet Out;
  for (int N : S)
    Out.insert(N);
  return Out;
}

void finishWeb(const CallGraph &CG, const RefSets &RS, Web &W) {
  W.EntryNodes.clear();
  W.Modifies = false;
  long long Benefit = 0;
  for (int N : W.Nodes) {
    if (RS.refStores(N, W.GlobalId))
      W.Modifies = true;
    Benefit = capAdd(Benefit, capMul(RS.refFreq(N, W.GlobalId),
                                     CG.invocationCount(N)));
  }
  long long EntryOverhead = 0;
  for (int N : W.Nodes) {
    bool HasInternalPred = false;
    for (int P : CG.node(N).Preds)
      if (W.Nodes.count(P)) {
        HasInternalPred = true;
        break;
      }
    if (!HasInternalPred) {
      W.EntryNodes.push_back(N);
      EntryOverhead = capAdd(EntryOverhead, capMul(CG.invocationCount(N),
                                                   W.Modifies ? 2 : 1));
    }
  }
  W.Priority = Benefit - EntryOverhead;
}

/// §7.6.1 re-merging, element-wise as the seed did it.
void remergeWebs(const CallGraph &CG, const RefSets &RS,
                 std::vector<Web> &Webs, const WebOptions &Options) {
  auto commonDominator = [&](int A, int B) {
    std::set<int> Chain;
    for (int N = A; N >= 0; N = CG.idom(N))
      Chain.insert(N);
    for (int N = B; N >= 0; N = CG.idom(N))
      if (Chain.count(N))
        return N;
    return -1;
  };

  auto IsCandidate = [](const Web &W) {
    return !W.IsSplit &&
           (W.Considered || W.DiscardReason == "unprofitable" ||
            W.DiscardReason == "too sparse" ||
            W.DiscardReason == "single node, infrequent");
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t A = 0; A < Webs.size() && !Changed; ++A) {
      if (!IsCandidate(Webs[A]))
        continue;
      for (size_t B = A + 1; B < Webs.size() && !Changed; ++B) {
        if (!IsCandidate(Webs[B]) ||
            Webs[B].GlobalId != Webs[A].GlobalId)
          continue;
        int G = Webs[A].GlobalId;

        int Dom = -1;
        for (const Web *W : {&Webs[A], &Webs[B]})
          for (int E : W->EntryNodes)
            Dom = Dom == -1 ? E : commonDominator(Dom, E);
        if (Dom == -1)
          continue;

        std::set<int> Union;
        for (int N : Webs[A].Nodes)
          Union.insert(N);
        for (int N : Webs[B].Nodes)
          Union.insert(N);
        std::vector<char> FromDom(CG.size(), 0), ToWeb(CG.size(), 0);
        std::vector<int> Work{Dom};
        FromDom[Dom] = 1;
        while (!Work.empty()) {
          int N = Work.back();
          Work.pop_back();
          for (int S : CG.node(N).Succs)
            if (!FromDom[S]) {
              FromDom[S] = 1;
              Work.push_back(S);
            }
        }
        for (int N : Union)
          if (!ToWeb[N]) {
            ToWeb[N] = 1;
            Work.push_back(N);
          }
        while (!Work.empty()) {
          int N = Work.back();
          Work.pop_back();
          for (int P : CG.node(N).Preds)
            if (!ToWeb[P]) {
              ToWeb[P] = 1;
              Work.push_back(P);
            }
        }
        for (int N = 0; N < CG.size(); ++N)
          if (FromDom[N] && ToWeb[N])
            Union.insert(N);

        std::set<int> MergedNodes;
        bool TouchesSplitWeb = false;
        bool Grew = true;
        while (Grew && !TouchesSplitWeb) {
          Grew = false;
          MergedNodes.clear();
          growWeb(CG, RS, G, MergedNodes, Union);
          std::vector<char> Reach(CG.size(), 0);
          for (int N : MergedNodes)
            if (!Reach[N]) {
              Reach[N] = 1;
              Work.push_back(N);
            }
          while (!Work.empty()) {
            int N = Work.back();
            Work.pop_back();
            for (int S : CG.node(N).Succs)
              if (!Reach[S]) {
                Reach[S] = 1;
                Work.push_back(S);
              }
          }
          for (const Web &W : Webs) {
            if (W.GlobalId != G)
              continue;
            bool Touched = false;
            for (int N : W.Nodes)
              Touched |= Reach[N] != 0;
            if (!Touched)
              continue;
            if (W.IsSplit) {
              TouchesSplitWeb = true;
              break;
            }
            for (int N : W.Nodes)
              if (Union.insert(N).second)
                Grew = true;
          }
        }
        if (TouchesSplitWeb)
          continue;

        Web Merged;
        Merged.GlobalId = G;
        Merged.Nodes = toNodeSet(MergedNodes);
        Merged.IsRemerged = true;
        finishWeb(CG, RS, Merged);

        if (!Options.AssumeClosedWorld) {
          std::set<int> Entries(Merged.EntryNodes.begin(),
                                Merged.EntryNodes.end());
          bool VisibleInterior = false;
          for (int N : Merged.Nodes)
            VisibleInterior |=
                !Entries.count(N) && CG.node(N).ExternallyVisible;
          if (VisibleInterior)
            continue;
        }
        std::string StaticModule = moduleOfQualName(RS.globalName(G));
        if (Options.DiscardCrossModuleStaticWebs &&
            !StaticModule.empty()) {
          bool Crosses = false;
          for (int E : Merged.EntryNodes)
            Crosses |= CG.node(E).Module != StaticModule;
          if (Crosses)
            continue;
        }

        long long PairPriority = 0;
        std::vector<size_t> Absorbed;
        for (size_t C = 0; C < Webs.size(); ++C) {
          if (Webs[C].GlobalId != G)
            continue;
          bool Overlaps = false;
          for (int N : Webs[C].Nodes)
            if (MergedNodes.count(N)) {
              Overlaps = true;
              break;
            }
          if (Overlaps) {
            Absorbed.push_back(C);
            if (Webs[C].Considered)
              PairPriority = capAdd(PairPriority, Webs[C].Priority);
          }
        }
        if (Merged.Priority <= PairPriority || Merged.Priority <= 0)
          continue;

        for (size_t I = Absorbed.size(); I-- > 0;)
          Webs.erase(Webs.begin() + Absorbed[I]);
        Webs.push_back(std::move(Merged));
        for (size_t I = 0; I < Webs.size(); ++I)
          Webs[I].Id = static_cast<int>(I);
        Changed = true;
      }
    }
  }
}

/// §7.6.1 splitting on std::set components.
std::vector<Web> splitSparseWeb(const CallGraph &CG, const RefSets &RS,
                                const std::set<int> &ParentNodes, int G) {
  std::vector<int> RefNodes;
  for (int N : ParentNodes)
    if (RS.lref(N).test(G))
      RefNodes.push_back(N);
  std::map<int, int> Component;
  int NumComponents = 0;
  for (int Seed : RefNodes) {
    if (Component.count(Seed))
      continue;
    int Id = NumComponents++;
    std::vector<int> Work = {Seed};
    Component[Seed] = Id;
    while (!Work.empty()) {
      int N = Work.back();
      Work.pop_back();
      auto Visit = [&](int M) {
        if (RS.lref(M).test(G) && ParentNodes.count(M) &&
            !Component.count(M)) {
          Component[M] = Id;
          Work.push_back(M);
        }
      };
      for (int S : CG.node(N).Succs)
        Visit(S);
      for (int P : CG.node(N).Preds)
        Visit(P);
    }
  }
  if (NumComponents < 2)
    return {};

  std::vector<std::set<int>> SubNodes(NumComponents);
  for (auto &[Node, Id] : Component)
    SubNodes[Id].insert(Node);
  for (auto &W : SubNodes)
    closeSplitWeb(CG, W);
  std::vector<std::set<int>> Merged;
  for (std::set<int> W : SubNodes) {
    bool Absorbed = true;
    while (Absorbed) {
      Absorbed = false;
      for (auto It = Merged.begin(); It != Merged.end(); ++It) {
        bool Overlaps = false;
        for (int N : W)
          if (It->count(N)) {
            Overlaps = true;
            break;
          }
        if (Overlaps) {
          W.insert(It->begin(), It->end());
          Merged.erase(It);
          closeSplitWeb(CG, W);
          Absorbed = true;
          break;
        }
      }
    }
    Merged.push_back(std::move(W));
  }
  if (Merged.size() < 2)
    return {};

  std::vector<Web> Out;
  for (const std::set<int> &Nodes : Merged) {
    Web W;
    W.GlobalId = G;
    W.IsSplit = true;
    W.Nodes = toNodeSet(Nodes);

    long long Benefit = 0;
    for (int N : Nodes) {
      if (RS.refStores(N, G))
        W.Modifies = true;
      Benefit =
          capAdd(Benefit, capMul(RS.refFreq(N, G), CG.invocationCount(N)));
    }

    long long Overhead = 0;
    for (int N : Nodes) {
      bool HasInternalPred = false;
      for (int P : CG.node(N).Preds)
        if (Nodes.count(P)) {
          HasInternalPred = true;
          break;
        }
      if (!HasInternalPred) {
        W.EntryNodes.push_back(N);
        Overhead = capAdd(Overhead, capMul(CG.invocationCount(N),
                                           W.Modifies ? 2 : 1));
      }
      for (int S : CG.node(N).Succs) {
        if (Nodes.count(S))
          continue;
        if (RS.lref(S).test(G) || RS.cref(S).test(G)) {
          W.WrapEdges[N].insert(S);
          Overhead = capAdd(Overhead, capMul(CG.edgeCount(N, S),
                                             W.Modifies ? 2 : 1));
        }
      }
      if (CG.node(N).MakesIndirectCalls) {
        for (const CGNode &T : CG.nodes()) {
          if (!T.IsAddressTaken || Nodes.count(T.Id))
            continue;
          if (RS.lref(T.Id).test(G) || RS.cref(T.Id).test(G)) {
            W.WrapIndirect.insert(N);
            Overhead = capAdd(Overhead, capMul(CG.invocationCount(N), 2));
            break;
          }
        }
      }
    }
    W.Priority = Benefit - Overhead;
    if (W.Priority <= 0) {
      W.Considered = false;
      W.DiscardReason = "split sub-web unprofitable";
    }
    Out.push_back(std::move(W));
  }
  return Out;
}

} // namespace

std::vector<Web> reference::buildWebs(const CallGraph &CG,
                                      const RefSets &RS,
                                      const WebOptions &Options) {
  std::vector<Web> Webs;

  for (int G = 0; G < RS.numEligible(); ++G) {
    std::vector<std::set<int>> GWebs;

    auto InSomeWeb = [&GWebs](int Node) {
      for (const std::set<int> &W : GWebs)
        if (W.count(Node))
          return true;
      return false;
    };
    auto MergeIn = [&GWebs](std::set<int> W) {
      for (auto It = GWebs.begin(); It != GWebs.end();) {
        bool Overlaps = false;
        for (int N : *It)
          if (W.count(N)) {
            Overlaps = true;
            break;
          }
        if (Overlaps) {
          W.insert(It->begin(), It->end());
          It = GWebs.erase(It);
        } else {
          ++It;
        }
      }
      GWebs.push_back(std::move(W));
    };

    for (int P = 0; P < CG.size(); ++P) {
      if (!RS.lref(P).test(G) || RS.pref(P).test(G) || InSomeWeb(P))
        continue;
      std::set<int> W;
      growWeb(CG, RS, G, W, {P});
      MergeIn(std::move(W));
    }

    for (int P = 0; P < CG.size(); ++P) {
      if (!RS.lref(P).test(G) || InSomeWeb(P))
        continue;
      std::set<int> Seeds;
      for (int N = 0; N < CG.size(); ++N)
        if (CG.sccId(N) == CG.sccId(P))
          Seeds.insert(N);
      std::set<int> W;
      growWeb(CG, RS, G, W, Seeds);
      MergeIn(std::move(W));
    }

    for (std::set<int> &Nodes : GWebs) {
      Web W;
      W.Id = static_cast<int>(Webs.size());
      W.GlobalId = G;
      W.Nodes = toNodeSet(Nodes);

      int LRefNodes = 0;
      long long Benefit = 0;
      for (int N : Nodes) {
        if (RS.lref(N).test(G))
          ++LRefNodes;
        if (RS.refStores(N, G))
          W.Modifies = true;
        Benefit = capAdd(
            Benefit, capMul(RS.refFreq(N, G), CG.invocationCount(N)));
      }
      long long EntryOverhead = 0;
      for (int N : Nodes) {
        bool HasInternalPred = false;
        for (int P : CG.node(N).Preds)
          if (Nodes.count(P)) {
            HasInternalPred = true;
            break;
          }
        if (!HasInternalPred) {
          W.EntryNodes.push_back(N);
          EntryOverhead = capAdd(
              EntryOverhead,
              capMul(CG.invocationCount(N), W.Modifies ? 2 : 1));
        }
      }
      W.Priority = Benefit - EntryOverhead;

      if (!Options.AssumeClosedWorld && W.Considered) {
        std::set<int> Entries(W.EntryNodes.begin(), W.EntryNodes.end());
        for (int N : Nodes) {
          if (!Entries.count(N) && CG.node(N).ExternallyVisible) {
            W.Considered = false;
            W.DiscardReason = "interior node externally visible";
            break;
          }
        }
      }
      const std::string &Name = RS.globalName(G);
      std::string StaticModule = moduleOfQualName(Name);
      if (Options.DiscardCrossModuleStaticWebs && !StaticModule.empty()) {
        for (int E : W.EntryNodes) {
          if (CG.node(E).Module != StaticModule) {
            W.Considered = false;
            W.DiscardReason = "static web entry crosses modules";
            break;
          }
        }
      }
      if (W.Considered && Nodes.size() == 1) {
        int Only = *Nodes.begin();
        if (RS.refFreq(Only, G) < Options.MinSingleNodeFreq) {
          W.Considered = false;
          W.DiscardReason = "single node, infrequent";
        }
      }
      if (W.Considered && !Nodes.empty()) {
        double Ratio =
            static_cast<double>(LRefNodes) / static_cast<double>(
                                                 Nodes.size());
        if (Ratio < Options.MinLRefRatio) {
          W.Considered = false;
          W.DiscardReason = "too sparse";
        }
      }
      if (W.Considered && W.Priority <= 0) {
        W.Considered = false;
        W.DiscardReason = "unprofitable";
      }

      if (Options.SplitSparseWebs && !W.Considered &&
          W.DiscardReason == "too sparse") {
        std::vector<Web> Subs = splitSparseWeb(CG, RS, Nodes, G);
        if (!Subs.empty()) {
          for (Web &Sub : Subs) {
            Sub.Id = static_cast<int>(Webs.size());
            Webs.push_back(std::move(Sub));
          }
          continue;
        }
      }
      W.Id = static_cast<int>(Webs.size());
      Webs.push_back(std::move(W));
    }
  }
  if (Options.RemergeWebs)
    remergeWebs(CG, RS, Webs, Options);
  return Webs;
}

namespace {

long long incomingCalls(const CallGraph &CG, int Node) {
  long long In = 0;
  for (int P : CG.node(Node).Preds)
    In += CG.edgeCount(P, Node);
  for (int S : CG.startNodes())
    if (S == Node)
      In += 1;
  return In;
}

bool isRootCandidate(const CallGraph &CG, int R,
                     const ClusterOptions &Options) {
  if (!CG.isReachable(R))
    return false;
  long long Outgoing = 0;
  bool AnyCandidate = false;
  for (int S : CG.node(R).Succs) {
    if (S == R || CG.isRecursive(S) || !CG.isReachable(S))
      continue;
    if (CG.idom(S) != R)
      continue;
    AnyCandidate = true;
    Outgoing += CG.edgeCount(R, S);
  }
  if (!AnyCandidate)
    return false;
  long long Incoming = incomingCalls(CG, R);
  return static_cast<double>(Outgoing) >
         Options.RootBenefitThreshold * static_cast<double>(Incoming);
}

} // namespace

std::vector<Cluster>
reference::identifyClusters(const CallGraph &CG,
                            const ClusterOptions &Options) {
  std::vector<bool> IsRoot(CG.size(), false);
  for (int N : CG.rpo())
    IsRoot[N] = isRootCandidate(CG, N, Options);

  auto NearestRoot = [&](int Node) {
    int D = CG.idom(Node);
    while (D >= 0) {
      if (IsRoot[D])
        return D;
      D = CG.idom(D);
    }
    return -1;
  };

  std::vector<int> ClusterOf(CG.size(), -1);
  std::vector<Cluster> Clusters;
  for (int R : CG.rpo()) {
    if (!IsRoot[R])
      continue;
    Cluster C;
    C.Root = R;
    std::set<int> InCluster = {R};

    bool Grew = true;
    while (Grew) {
      Grew = false;
      std::set<int> Frontier;
      auto AddSuccs = [&](int N) {
        for (int S : CG.node(N).Succs)
          if (!InCluster.count(S))
            Frontier.insert(S);
      };
      AddSuccs(R);
      for (int M : C.Members)
        if (!IsRoot[M])
          AddSuccs(M);

      for (int S : Frontier) {
        if (!CG.isReachable(S) || S == R)
          continue;
        if (CG.isRecursive(S))
          continue;
        if (!Options.AssumeClosedWorld && CG.node(S).ExternallyVisible)
          continue;
        if (ClusterOf[S] != -1 || NearestRoot(S) != R)
          continue;
        bool AllPredsIn = true;
        for (int P : CG.node(S).Preds)
          if (!InCluster.count(P)) {
            AllPredsIn = false;
            break;
          }
        if (!AllPredsIn)
          continue;
        InCluster.insert(S);
        C.Members.push_back(S);
        ClusterOf[S] = static_cast<int>(Clusters.size());
        Grew = true;
      }
    }

    if (!C.Members.empty())
      Clusters.push_back(std::move(C));
    else
      IsRoot[R] = false;
  }
  return Clusters;
}
