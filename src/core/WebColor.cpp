//===- WebColor.cpp - Web interference graph coloring ----------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/WebColor.h"

#include <algorithm>
#include <map>

using namespace ipra;

namespace {

/// Returns considered-web ids sorted by descending priority, and the
/// per-node occupancy map used for interference.
std::vector<int> prioritizedWebs(const std::vector<Web> &Webs) {
  std::vector<int> Order;
  for (const Web &W : Webs)
    if (W.Considered)
      Order.push_back(W.Id);
  std::stable_sort(Order.begin(), Order.end(), [&Webs](int A, int B) {
    return Webs[A].Priority > Webs[B].Priority;
  });
  return Order;
}

/// Mask of registers already held by colored webs interfering with W
/// (webs interfere when they share a call-graph node, §4.1.3).
RegMask neighborRegs(const std::vector<Web> &Webs, const Web &W,
                     const std::vector<std::vector<int>> &NodeWebs) {
  RegMask Used = 0;
  for (int N : W.Nodes)
    for (int Other : NodeWebs[N])
      if (Other != W.Id && Webs[Other].AssignedReg >= 0)
        Used |= pr32::maskOf(
            static_cast<unsigned>(Webs[Other].AssignedReg));
  return Used;
}

std::vector<std::vector<int>> nodeWebMap(const std::vector<Web> &Webs,
                                         int NumNodes) {
  std::vector<std::vector<int>> NodeWebs(NumNodes);
  for (const Web &W : Webs)
    if (W.Considered)
      for (int N : W.Nodes)
        NodeWebs[N].push_back(W.Id);
  return NodeWebs;
}

WebColorStats statsFor(const std::vector<Web> &Webs) {
  WebColorStats Stats;
  Stats.TotalWebs = static_cast<int>(Webs.size());
  for (const Web &W : Webs) {
    if (W.Considered)
      ++Stats.Considered;
    if (W.AssignedReg >= 0)
      ++Stats.Colored;
  }
  return Stats;
}

} // namespace

WebColorStats ipra::colorWebsKRegisters(std::vector<Web> &Webs,
                                        const CallGraph &CG, RegMask Pool) {
  auto NodeWebs = nodeWebMap(Webs, CG.size());
  for (int Id : prioritizedWebs(Webs)) {
    Web &W = Webs[Id];
    RegMask Avail = Pool & ~neighborRegs(Webs, W, NodeWebs);
    if (Avail)
      W.AssignedReg = static_cast<int>(__builtin_ctz(Avail));
  }
  return statsFor(Webs);
}

WebColorStats ipra::colorWebsGreedy(std::vector<Web> &Webs,
                                    const CallGraph &CG) {
  auto NodeWebs = nodeWebMap(Webs, CG.size());
  // Per node: callee-saves registers still available once the node's own
  // estimated need is honored.
  std::vector<int> Headroom(CG.size());
  for (int N = 0; N < CG.size(); ++N)
    Headroom[N] = static_cast<int>(pr32::NumCalleeSaved) -
                  static_cast<int>(CG.node(N).CalleeRegsNeeded);

  for (int Id : prioritizedWebs(Webs)) {
    Web &W = Webs[Id];
    bool Fits = true;
    for (int N : W.Nodes)
      if (Headroom[N] <= 0) {
        Fits = false;
        break;
      }
    if (!Fits)
      continue;
    RegMask Avail =
        pr32::calleeSavedMask() & ~neighborRegs(Webs, W, NodeWebs);
    if (!Avail)
      continue;
    W.AssignedReg = static_cast<int>(__builtin_ctz(Avail));
    for (int N : W.Nodes)
      --Headroom[N];
  }
  return statsFor(Webs);
}

std::vector<Web> ipra::buildBlanketWebs(const CallGraph &CG,
                                        const RefSets &RS, int Count,
                                        RegMask Pool) {
  // Rank eligible globals by whole-program weighted reference count
  // ("the most frequently used global variables", §6.1).
  std::vector<std::pair<long long, int>> Ranked;
  for (int G = 0; G < RS.numEligible(); ++G) {
    long long Total = 0;
    for (int N = 0; N < CG.size(); ++N) {
      long long Add = RS.refFreq(N, G) * std::max<long long>(
                                             1, CG.invocationCount(N));
      Total = std::min(Total + Add, 1'000'000'000'000'000LL);
    }
    if (Total > 0)
      Ranked.push_back({Total, G});
  }
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const auto &A, const auto &B) {
                     return A.first > B.first;
                   });

  std::vector<unsigned> PoolRegs = pr32::maskRegs(Pool);
  std::vector<Web> Out;
  size_t Limit = std::min({static_cast<size_t>(Count), Ranked.size(),
                           PoolRegs.size()});
  for (size_t I = 0; I < Limit; ++I) {
    Web W;
    W.Id = static_cast<int>(Out.size());
    W.GlobalId = Ranked[I].second;
    W.Priority = Ranked[I].first;
    W.Nodes = NodeSet::withUniverse(CG.size());
    for (int N = 0; N < CG.size(); ++N) {
      W.Nodes.insert(N);
      if (RS.refStores(N, W.GlobalId))
        W.Modifies = true;
    }
    // The program's start nodes play the role of web entries: the
    // variable is loaded once at startup and stored back at exit.
    for (int S : CG.startNodes())
      W.EntryNodes.push_back(S);
    W.AssignedReg = static_cast<int>(PoolRegs[I]);
    Out.push_back(std::move(W));
  }
  return Out;
}

std::vector<std::string> ipra::checkColoring(const std::vector<Web> &Webs) {
  std::vector<std::string> Problems;
  for (size_t A = 0; A < Webs.size(); ++A) {
    const Web &WA = Webs[A];
    if (WA.AssignedReg >= 0 &&
        !pr32::isCalleeSaved(static_cast<unsigned>(WA.AssignedReg)))
      Problems.push_back("web " + std::to_string(WA.Id) +
                         " colored with a non-callee-saves register");
    if (WA.AssignedReg < 0)
      continue;
    for (size_t B = A + 1; B < Webs.size(); ++B) {
      const Web &WB = Webs[B];
      if (WB.AssignedReg != WA.AssignedReg)
        continue;
      if (WA.Nodes.intersects(WB.Nodes))
        Problems.push_back("webs " + std::to_string(WA.Id) + " and " +
                           std::to_string(WB.Id) +
                           " interfere but share a register");
    }
  }
  return Problems;
}
