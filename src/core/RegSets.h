//===- RegSets.h - FREE/CALLER/CALLEE/MSPILL computation --------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the per-procedure register usage sets (§4.2.3) by walking
/// cluster roots bottom-up and running Preallocate_Node (Figure 6) over
/// each cluster:
///
///  - the cluster root's own callee-saves needs become CALLEE[R]; the
///    remaining callee-saves registers are AVAIL and flow down the
///    cluster (intersected over predecessors);
///  - interior nodes pre-allocate FREE registers from AVAIL according to
///    their estimated need;
///  - a member that roots a deeper cluster donates the AVAIL part of its
///    MSPILL set upward (spill code motion across clusters) and turns
///    its CALLEE overlap into FREE registers;
///  - everything handed out is accumulated into USED and finally into
///    MSPILL[R]: the root saves and restores those registers whether it
///    uses them or not;
///  - the post-pass adds AVAIL[Q] ∩ MSPILL[R] to CALLER[Q] at interior
///    nodes (registers the root spills anyway are free scratch there).
///
/// Registers dedicated to promoted-global webs are removed from the
/// root's AVAIL (base algorithm) or, with the §7.6.2 extension enabled,
/// only at the nodes the web actually covers. A second §7.6.2 extension
/// optionally widens FREE sets with root-spilled registers unused on
/// every path below a node.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_REGSETS_H
#define IPRA_CORE_REGSETS_H

#include "core/Clusters.h"
#include "core/Webs.h"
#include "target/Directives.h"

#include <string>
#include <vector>

namespace ipra {

/// Options for the register-set computation.
struct RegSetOptions {
  /// §7.6.2: remove web registers from AVAIL only at nodes the web
  /// covers, instead of at the whole cluster.
  bool RelaxWebAvail = false;
  /// §7.6.2: add root-spilled registers unused downstream to FREE.
  bool ImprovedFreeSets = false;
};

/// Computes FREE/CALLER/CALLEE/MSPILL for every node. The returned
/// vector is indexed by call-graph node id; nodes outside every cluster
/// keep the standard convention. Promoted-web registers are reserved at
/// covered nodes via the Promoted lists filled in by the analyzer (not
/// here).
std::vector<ProcDirectives> computeRegisterSets(
    const CallGraph &CG, const std::vector<Cluster> &Clusters,
    const std::vector<Web> &Webs, const RegSetOptions &Options = {});

/// Verification helper: register-set soundness (sets are disjoint where
/// required, FREE at interior nodes is covered by the root's MSPILL,
/// CALLER additions are root-spilled, web registers never appear in any
/// set at covered nodes).
std::vector<std::string> checkRegisterSetInvariants(
    const CallGraph &CG, const std::vector<Cluster> &Clusters,
    const std::vector<Web> &Webs,
    const std::vector<ProcDirectives> &Sets);

} // namespace ipra

#endif // IPRA_CORE_REGSETS_H
