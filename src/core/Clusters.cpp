//===- Clusters.cpp - Spill-code-motion cluster identification --------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/Clusters.h"

#include "support/NodeSet.h"

#include <algorithm>
#include <cstdint>

using namespace ipra;

namespace {

/// True when \p S could become a member of a cluster rooted at \p R:
/// an immediate successor R dominates, non-recursive and reachable.
bool memberCandidate(const CallGraph &CG, int R, int S) {
  return S != R && !CG.isRecursive(S) && CG.isReachable(S) &&
         CG.idom(S) == R;
}

} // namespace

std::vector<Cluster> ipra::identifyClusters(const CallGraph &CG,
                                            const ClusterOptions &Options) {
  int N = CG.size();

  // Pass 1: the root set — the §4.2.2 heuristic (refined per §7.6.2)
  // compares the calls into R with the calls R makes to immediate
  // successors that could become members. The per-node dynamic call
  // totals come from one ordered walk over the edge-count map rather
  // than a tree lookup per adjacent edge; profiled runs may carry
  // counts for edges absent from the graph, so the walk filters
  // against sorted adjacency (edges without a count contribute 0 to
  // both sums either way).
  std::vector<long long> Incoming(N, 0), Outgoing(N, 0);
  std::vector<uint8_t> AnyCandidate(N, 0);
  {
    std::vector<std::vector<int>> SortedSuccs(N);
    for (int U = 0; U < N; ++U) {
      SortedSuccs[U] = CG.node(U).Succs;
      std::sort(SortedSuccs[U].begin(), SortedSuccs[U].end());
    }
    for (const auto &[Edge, Count] : CG.edgeCounts()) {
      auto [F, T] = Edge;
      const std::vector<int> &SS = SortedSuccs[F];
      if (!std::binary_search(SS.begin(), SS.end(), T))
        continue;
      Incoming[T] += Count;
      if (memberCandidate(CG, F, T))
        Outgoing[F] += Count;
    }
    // Start nodes are invoked once from outside the program graph.
    for (int S : CG.startNodes())
      Incoming[S] += 1;
    for (int U = 0; U < N; ++U)
      for (int S : CG.node(U).Succs)
        if (memberCandidate(CG, U, S)) {
          AnyCandidate[U] = 1;
          break;
        }
  }

  std::vector<bool> IsRoot(N, false);
  for (int R : CG.rpo())
    IsRoot[R] = AnyCandidate[R] &&
                static_cast<double>(Outgoing[R]) >
                    Options.RootBenefitThreshold *
                        static_cast<double>(Incoming[R]);

  // Nearest dominating root of a node (walking the idom chain,
  // excluding the node itself).
  auto NearestRoot = [&](int Node) {
    int D = CG.idom(Node);
    while (D >= 0) {
      if (IsRoot[D])
        return D;
      D = CG.idom(D);
    }
    return -1;
  };

  // Pass 2: grow each root's cluster. Roots are processed in RPO
  // (dominators precede dominated nodes), which realizes Figure 5's
  // postpone-visit order: a node is added only after every predecessor
  // is already a member.
  //
  // Membership and the frontier use generation-stamped scratch arrays
  // shared across roots: per-root universe-sized bitsets would cost
  // O(roots x nodes) in allocation alone. The frontier is sorted before
  // the admission scan so candidates are still visited in ascending
  // node id, exactly the order the bitset iteration produced.
  std::vector<int> ClusterOf(CG.size(), -1);
  std::vector<Cluster> Clusters;
  std::vector<int> MemberStamp(N, -1), FrontierStamp(N, -1);
  std::vector<int> Frontier;
  int Generation = 0;
  for (int R : CG.rpo()) {
    if (!IsRoot[R])
      continue;
    Cluster C;
    C.Root = R;
    auto InCluster = [&](int Node) { return MemberStamp[Node] == R; };
    MemberStamp[R] = R;

    bool Grew = true;
    while (Grew) {
      Grew = false;
      // Candidate frontier: successors of members (or the root) that
      // are not yet members. Expansion does not continue past member
      // nodes that root deeper clusters (their own cluster covers their
      // subtree).
      ++Generation;
      Frontier.clear();
      auto AddSuccs = [&](int Node) {
        for (int S : CG.node(Node).Succs)
          if (!InCluster(S) && FrontierStamp[S] != Generation) {
            FrontierStamp[S] = Generation;
            Frontier.push_back(S);
          }
      };
      AddSuccs(R);
      for (int M : C.Members)
        if (!IsRoot[M])
          AddSuccs(M);
      std::sort(Frontier.begin(), Frontier.end());

      for (int S : Frontier) {
        if (!CG.isReachable(S) || S == R)
          continue;
        // No recursive call cycles within clusters (§4.2.2).
        if (CG.isRecursive(S))
          continue;
        // Partial call graphs (§7.2): unknown callers could reach an
        // exported procedure directly, bypassing the cluster root.
        if (!Options.AssumeClosedWorld && CG.node(S).ExternallyVisible)
          continue;
        // Property [3]: nearest dominating root must be R.
        if (ClusterOf[S] != -1 || NearestRoot(S) != R)
          continue;
        // Property [2]: every immediate predecessor already a member.
        bool AllPredsIn = true;
        for (int P : CG.node(S).Preds)
          if (!InCluster(P)) {
            AllPredsIn = false;
            break;
          }
        if (!AllPredsIn)
          continue;
        MemberStamp[S] = R;
        C.Members.push_back(S);
        ClusterOf[S] = static_cast<int>(Clusters.size());
        Grew = true;
      }
    }

    if (!C.Members.empty())
      Clusters.push_back(std::move(C));
    else
      IsRoot[R] = false; // Nothing joined; not a cluster after all.
  }
  return Clusters;
}

std::vector<std::string> ipra::checkClusterInvariants(
    const CallGraph &CG, const std::vector<Cluster> &Clusters) {
  std::vector<std::string> Problems;
  std::vector<int> MemberOf(CG.size(), -1);

  for (size_t CI = 0; CI < Clusters.size(); ++CI) {
    const Cluster &C = Clusters[CI];
    NodeSet InCluster = NodeSet::withUniverse(CG.size());
    for (int M : C.Members)
      InCluster.insert(M);
    InCluster.insert(C.Root);

    for (int M : C.Members) {
      // [3]: unique membership.
      if (MemberOf[M] != -1)
        Problems.push_back("node " + CG.node(M).QualName +
                           " belongs to two clusters");
      MemberOf[M] = static_cast<int>(CI);
      // [1]: the root dominates every member.
      if (!CG.dominates(C.Root, M))
        Problems.push_back("root " + CG.node(C.Root).QualName +
                           " does not dominate member " +
                           CG.node(M).QualName);
      // [2]: members' predecessors are inside the cluster.
      for (int P : CG.node(M).Preds)
        if (!InCluster.count(P))
          Problems.push_back("member " + CG.node(M).QualName +
                             " has predecessor " + CG.node(P).QualName +
                             " outside the cluster");
      // No recursion among members.
      if (CG.isRecursive(M))
        Problems.push_back("member " + CG.node(M).QualName +
                           " is recursive");
    }
    // No two members (or member+root) share a nontrivial SCC.
    for (int A : InCluster)
      for (int B : InCluster)
        if (A < B && CG.sccId(A) == CG.sccId(B))
          Problems.push_back("cluster of " + CG.node(C.Root).QualName +
                             " contains a call cycle");
  }
  return Problems;
}
