//===- Clusters.cpp - Spill-code-motion cluster identification --------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/Clusters.h"

#include "support/NodeSet.h"

#include <algorithm>

using namespace ipra;

namespace {

/// Incoming dynamic call count of \p Node (1 for start nodes, which are
/// invoked once from outside the program graph).
long long incomingCalls(const CallGraph &CG, int Node) {
  long long In = 0;
  for (int P : CG.node(Node).Preds)
    In += CG.edgeCount(P, Node);
  for (int S : CG.startNodes())
    if (S == Node)
      In += 1;
  return In;
}

/// The root heuristic (§4.2.2, refined per §7.6.2): compare the calls
/// into R with the calls R makes to immediate successors it dominates
/// and that could become members (non-recursive, reachable).
bool isRootCandidate(const CallGraph &CG, int R,
                     const ClusterOptions &Options) {
  if (!CG.isReachable(R))
    return false;
  long long Outgoing = 0;
  bool AnyCandidate = false;
  for (int S : CG.node(R).Succs) {
    if (S == R || CG.isRecursive(S) || !CG.isReachable(S))
      continue;
    if (CG.idom(S) != R)
      continue;
    AnyCandidate = true;
    Outgoing += CG.edgeCount(R, S);
  }
  if (!AnyCandidate)
    return false;
  long long Incoming = incomingCalls(CG, R);
  return static_cast<double>(Outgoing) >
         Options.RootBenefitThreshold * static_cast<double>(Incoming);
}

} // namespace

std::vector<Cluster> ipra::identifyClusters(const CallGraph &CG,
                                            const ClusterOptions &Options) {
  // Pass 1: the root set.
  std::vector<bool> IsRoot(CG.size(), false);
  for (int N : CG.rpo())
    IsRoot[N] = isRootCandidate(CG, N, Options);

  // Nearest dominating root of a node (walking the idom chain,
  // excluding the node itself).
  auto NearestRoot = [&](int Node) {
    int D = CG.idom(Node);
    while (D >= 0) {
      if (IsRoot[D])
        return D;
      D = CG.idom(D);
    }
    return -1;
  };

  // Pass 2: grow each root's cluster. Roots are processed in RPO
  // (dominators precede dominated nodes), which realizes Figure 5's
  // postpone-visit order: a node is added only after every predecessor
  // is already a member.
  std::vector<int> ClusterOf(CG.size(), -1);
  std::vector<Cluster> Clusters;
  for (int R : CG.rpo()) {
    if (!IsRoot[R])
      continue;
    Cluster C;
    C.Root = R;
    NodeSet InCluster = NodeSet::withUniverse(CG.size());
    InCluster.insert(R);

    bool Grew = true;
    while (Grew) {
      Grew = false;
      // Candidate frontier: successors of members (or the root) that
      // are not yet members. Expansion does not continue past member
      // nodes that root deeper clusters (their own cluster covers their
      // subtree).
      NodeSet Frontier = NodeSet::withUniverse(CG.size());
      auto AddSuccs = [&](int N) {
        for (int S : CG.node(N).Succs)
          if (!InCluster.count(S))
            Frontier.insert(S);
      };
      AddSuccs(R);
      for (int M : C.Members)
        if (!IsRoot[M])
          AddSuccs(M);

      for (int S : Frontier) {
        if (!CG.isReachable(S) || S == R)
          continue;
        // No recursive call cycles within clusters (§4.2.2).
        if (CG.isRecursive(S))
          continue;
        // Partial call graphs (§7.2): unknown callers could reach an
        // exported procedure directly, bypassing the cluster root.
        if (!Options.AssumeClosedWorld && CG.node(S).ExternallyVisible)
          continue;
        // Property [3]: nearest dominating root must be R.
        if (ClusterOf[S] != -1 || NearestRoot(S) != R)
          continue;
        // Property [2]: every immediate predecessor already a member.
        bool AllPredsIn = true;
        for (int P : CG.node(S).Preds)
          if (!InCluster.count(P)) {
            AllPredsIn = false;
            break;
          }
        if (!AllPredsIn)
          continue;
        InCluster.insert(S);
        C.Members.push_back(S);
        ClusterOf[S] = static_cast<int>(Clusters.size());
        Grew = true;
      }
    }

    if (!C.Members.empty())
      Clusters.push_back(std::move(C));
    else
      IsRoot[R] = false; // Nothing joined; not a cluster after all.
  }
  return Clusters;
}

std::vector<std::string> ipra::checkClusterInvariants(
    const CallGraph &CG, const std::vector<Cluster> &Clusters) {
  std::vector<std::string> Problems;
  std::vector<int> MemberOf(CG.size(), -1);

  for (size_t CI = 0; CI < Clusters.size(); ++CI) {
    const Cluster &C = Clusters[CI];
    NodeSet InCluster = NodeSet::withUniverse(CG.size());
    for (int M : C.Members)
      InCluster.insert(M);
    InCluster.insert(C.Root);

    for (int M : C.Members) {
      // [3]: unique membership.
      if (MemberOf[M] != -1)
        Problems.push_back("node " + CG.node(M).QualName +
                           " belongs to two clusters");
      MemberOf[M] = static_cast<int>(CI);
      // [1]: the root dominates every member.
      if (!CG.dominates(C.Root, M))
        Problems.push_back("root " + CG.node(C.Root).QualName +
                           " does not dominate member " +
                           CG.node(M).QualName);
      // [2]: members' predecessors are inside the cluster.
      for (int P : CG.node(M).Preds)
        if (!InCluster.count(P))
          Problems.push_back("member " + CG.node(M).QualName +
                             " has predecessor " + CG.node(P).QualName +
                             " outside the cluster");
      // No recursion among members.
      if (CG.isRecursive(M))
        Problems.push_back("member " + CG.node(M).QualName +
                           " is recursive");
    }
    // No two members (or member+root) share a nontrivial SCC.
    for (int A : InCluster)
      for (int B : InCluster)
        if (A < B && CG.sccId(A) == CG.sccId(B))
          Problems.push_back("cluster of " + CG.node(C.Root).QualName +
                             " contains a call cycle");
  }
  return Problems;
}
