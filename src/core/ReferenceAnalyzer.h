//===- ReferenceAnalyzer.h - Seed-style analyzer oracle --------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original (pre-scaling) analyzer algorithms, retained verbatim:
/// P_REF/C_REF by iterate-to-fixpoint instead of the SCC-condensation
/// sweeps, and web discovery on std::set<int> node sets instead of
/// bitsets, always serial. They serve two purposes:
///
///  - an equivalence oracle: property tests check that the optimized
///    analyzer produces the identical web set, entry nodes, register
///    assignments and cluster partition on randomized call graphs;
///  - a performance baseline: bench_analyzer_scale measures the
///    optimized analyzer's speedup against these implementations.
///
/// Nothing in the product pipeline calls into this namespace.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_REFERENCEANALYZER_H
#define IPRA_CORE_REFERENCEANALYZER_H

#include "core/Clusters.h"
#include "core/Webs.h"

namespace ipra {
namespace reference {

/// P_REF/C_REF computed by the seed's iterate-to-fixpoint loops over
/// (reverse) RPO order. L_REF comes from the production RefSets (its
/// construction from summaries is shared, not part of the rewrite).
class FixpointRefSets {
public:
  FixpointRefSets(const CallGraph &CG, const RefSets &RS);

  const DynBitset &pref(int Node) const { return PRef[Node]; }
  const DynBitset &cref(int Node) const { return CRef[Node]; }

private:
  std::vector<DynBitset> PRef, CRef;
};

/// The seed's std::set-based web discovery (Figure 2), including the
/// §6.2/§7.4/§7.2 filters, §7.6.1 splitting and re-merging. Produces
/// the same Web records as ipra::buildWebs.
std::vector<Web> buildWebs(const CallGraph &CG, const RefSets &RS,
                           const WebOptions &Options = {});

/// The seed's std::set-based cluster identification (§4.2).
std::vector<Cluster> identifyClusters(const CallGraph &CG,
                                      const ClusterOptions &Options = {});

} // namespace reference
} // namespace ipra

#endif // IPRA_CORE_REFERENCEANALYZER_H
