//===- Webs.cpp - Global variable webs over the call graph -----------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/Webs.h"

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ipra;

namespace {

constexpr long long PriorityCap = 1'000'000'000'000'000LL;

long long capAdd(long long A, long long B) {
  return std::min(PriorityCap, A + B);
}
long long capMul(long long A, long long B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > PriorityCap / B)
    return PriorityCap;
  return A * B;
}

/// Figure 2's Expand_Web, iteratively: adds \p Seed and every successor
/// chain whose nodes have G in L_REF or C_REF.
void expandWeb(const CallGraph &CG, const RefSets &RS, int G, NodeSet &W,
               int Seed) {
  std::vector<int> Stack = {Seed};
  while (!Stack.empty()) {
    int Q = Stack.back();
    Stack.pop_back();
    if (!W.insert(Q))
      continue;
    for (int S : CG.node(Q).Succs)
      if (!W.count(S) && (RS.cref(S).test(G) || RS.lref(S).test(G)))
        Stack.push_back(S);
  }
}

/// The repeat/until loop of Figure 2: expand from \p Seeds, then absorb
/// external predecessors of mixed-predecessor nodes until none remain.
void growWeb(const CallGraph &CG, const RefSets &RS, int G, NodeSet &W,
             NodeSet Seeds) {
  while (true) {
    for (int Q : Seeds)
      expandWeb(CG, RS, G, W, Q);
    // S := nodes of W with both an internal and an external predecessor.
    NodeSet NewSeeds = NodeSet::withUniverse(CG.size());
    bool Any = false;
    for (int Z : W) {
      bool Internal = false, External = false;
      for (int P : CG.node(Z).Preds) {
        if (W.count(P))
          Internal = true;
        else
          External = true;
      }
      if (Internal && External)
        for (int P : CG.node(Z).Preds)
          if (!W.count(P))
            Any |= NewSeeds.insert(P);
    }
    if (!Any)
      return;
    Seeds = std::move(NewSeeds);
  }
}

/// Module of a qualified name ("mod:x" -> "mod", plain names -> "").
std::string moduleOfQualName(const std::string &QualName) {
  size_t Colon = QualName.find(':');
  return Colon == std::string::npos ? "" : QualName.substr(0, Colon);
}

/// Grows a split sub-web to internal-closure: the enlargement half of
/// Figure 2's repeat loop, WITHOUT the successor descent (descendant
/// reference regions belong to other sub-webs; wrap code synchronizes
/// with them through memory).
void closeSplitWeb(const CallGraph &CG, NodeSet &W) {
  while (true) {
    NodeSet Absorb = NodeSet::withUniverse(CG.size());
    bool Any = false;
    for (int Z : W) {
      bool Internal = false, External = false;
      for (int P : CG.node(Z).Preds) {
        if (W.count(P))
          Internal = true;
        else
          External = true;
      }
      if (Internal && External)
        for (int P : CG.node(Z).Preds)
          if (!W.count(P))
            Any |= Absorb.insert(P);
    }
    if (!Any)
      return;
    W.unionWith(Absorb);
  }
}

/// Computes entries, the modifies flag and the §4.1.3 priority for a
/// (non-split) web whose Nodes are final.
void finishWeb(const CallGraph &CG, const RefSets &RS, Web &W) {
  W.EntryNodes.clear();
  W.Modifies = false;
  long long Benefit = 0;
  for (int N : W.Nodes) {
    if (RS.refStores(N, W.GlobalId))
      W.Modifies = true;
    Benefit = capAdd(Benefit, capMul(RS.refFreq(N, W.GlobalId),
                                     CG.invocationCount(N)));
  }
  long long EntryOverhead = 0;
  for (int N : W.Nodes) {
    bool HasInternalPred = false;
    for (int P : CG.node(N).Preds)
      if (W.Nodes.count(P)) {
        HasInternalPred = true;
        break;
      }
    if (!HasInternalPred) {
      W.EntryNodes.push_back(N);
      EntryOverhead = capAdd(EntryOverhead, capMul(CG.invocationCount(N),
                                                   W.Modifies ? 2 : 1));
    }
  }
  W.Priority = Benefit - EntryOverhead;
}

/// §7.6.1 re-merging: joins same-variable webs so they can "share
/// entry nodes, at the expense of extra interferences". Candidates are
/// webs that are promotable or were discarded for purely economic
/// reasons (unprofitable, sparse, infrequent) - a pair of webs that
/// individually cannot pay their per-entry load/store may be worth one
/// shared entry at their common dominator. The merged region is the
/// pair plus the connector nodes between the dominator and the webs,
/// closed under Figure 2's mixed-predecessor rule; it absorbs any
/// further web of the variable it overlaps or reaches (the
/// minimal-subgraph property must survive). The merge is kept when the
/// merged priority beats the combined priority of the considered webs
/// it replaces, and the §7.2/§7.4 correctness filters still hold.
void remergeWebs(const CallGraph &CG, const RefSets &RS,
                 std::vector<Web> &Webs, const WebOptions &Options) {
  // Nearest common dominator of two nodes (walking idom chains).
  auto commonDominator = [&](int A, int B) {
    NodeSet Chain;
    for (int N = A; N >= 0; N = CG.idom(N))
      Chain.insert(N);
    for (int N = B; N >= 0; N = CG.idom(N))
      if (Chain.count(N))
        return N;
    return -1;
  };

  // Economic discards may be resurrected by a merge; correctness
  // discards (§7.2 visibility, §7.4 statics) may not seed one.
  auto IsCandidate = [](const Web &W) {
    return !W.IsSplit &&
           (W.Considered || W.DiscardReason == "unprofitable" ||
            W.DiscardReason == "too sparse" ||
            W.DiscardReason == "single node, infrequent");
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t A = 0; A < Webs.size() && !Changed; ++A) {
      if (!IsCandidate(Webs[A]))
        continue;
      for (size_t B = A + 1; B < Webs.size() && !Changed; ++B) {
        if (!IsCandidate(Webs[B]) ||
            Webs[B].GlobalId != Webs[A].GlobalId)
          continue;
        int G = Webs[A].GlobalId;

        // Nearest common dominator of every entry of both webs.
        int Dom = -1;
        for (const Web *W : {&Webs[A], &Webs[B]})
          for (int E : W->EntryNodes)
            Dom = Dom == -1 ? E : commonDominator(Dom, E);
        if (Dom == -1)
          continue;

        // Region: the pair, plus nodes on Dom-to-web paths (reachable
        // from Dom and reaching a web node). The shared entry is Dom.
        NodeSet Union = Webs[A].Nodes;
        Union.unionWith(Webs[B].Nodes);
        std::vector<char> FromDom(CG.size(), 0), ToWeb(CG.size(), 0);
        std::vector<int> Work{Dom};
        FromDom[Dom] = 1;
        while (!Work.empty()) {
          int N = Work.back();
          Work.pop_back();
          for (int S : CG.node(N).Succs)
            if (!FromDom[S]) {
              FromDom[S] = 1;
              Work.push_back(S);
            }
        }
        for (int N : Union)
          if (!ToWeb[N]) {
            ToWeb[N] = 1;
            Work.push_back(N);
          }
        while (!Work.empty()) {
          int N = Work.back();
          Work.pop_back();
          for (int P : CG.node(N).Preds)
            if (!ToWeb[P]) {
              ToWeb[P] = 1;
              Work.push_back(P);
            }
        }
        for (int N = 0; N < CG.size(); ++N)
          if (FromDom[N] && ToWeb[N])
            Union.insert(N);

        // Close under the mixed-predecessor rule, then absorb every
        // same-variable web the region touches or reaches (a web left
        // downstream of the region would break the minimal-subgraph
        // property). Repeat until stable. Split sub-webs cannot be
        // absorbed (their wrap code assumes their exact shape): touching
        // one vetoes the merge.
        NodeSet MergedNodes;
        bool TouchesSplitWeb = false;
        bool Grew = true;
        while (Grew && !TouchesSplitWeb) {
          Grew = false;
          MergedNodes = NodeSet::withUniverse(CG.size());
          growWeb(CG, RS, G, MergedNodes, Union);
          std::vector<char> Reach(CG.size(), 0);
          for (int N : MergedNodes)
            if (!Reach[N]) {
              Reach[N] = 1;
              Work.push_back(N);
            }
          while (!Work.empty()) {
            int N = Work.back();
            Work.pop_back();
            for (int S : CG.node(N).Succs)
              if (!Reach[S]) {
                Reach[S] = 1;
                Work.push_back(S);
              }
          }
          for (const Web &W : Webs) {
            if (W.GlobalId != G)
              continue;
            bool Touched = false;
            for (int N : W.Nodes)
              Touched |= Reach[N] != 0;
            if (!Touched)
              continue;
            if (W.IsSplit) {
              TouchesSplitWeb = true;
              break;
            }
            for (int N : W.Nodes)
              if (Union.insert(N))
                Grew = true;
          }
        }
        if (TouchesSplitWeb)
          continue;

        Web Merged;
        Merged.GlobalId = G;
        Merged.Nodes = MergedNodes;
        Merged.IsRemerged = true;
        finishWeb(CG, RS, Merged);

        // The §7.2/§7.4 correctness filters apply to the merged shape.
        if (!Options.AssumeClosedWorld) {
          NodeSet Entries;
          for (int E : Merged.EntryNodes)
            Entries.insert(E);
          bool VisibleInterior = false;
          for (int N : Merged.Nodes)
            VisibleInterior |=
                !Entries.count(N) && CG.node(N).ExternallyVisible;
          if (VisibleInterior)
            continue;
        }
        std::string StaticModule = moduleOfQualName(RS.globalName(G));
        if (Options.DiscardCrossModuleStaticWebs &&
            !StaticModule.empty()) {
          bool Crosses = false;
          for (int E : Merged.EntryNodes)
            Crosses |= CG.node(E).Module != StaticModule;
          if (Crosses)
            continue;
        }

        // Profitable only if it beats what the absorbed webs deliver
        // today (discarded webs deliver nothing).
        long long PairPriority = 0;
        std::vector<size_t> Absorbed;
        for (size_t C = 0; C < Webs.size(); ++C) {
          if (Webs[C].GlobalId != G)
            continue;
          if (Webs[C].Nodes.intersects(MergedNodes)) {
            Absorbed.push_back(C);
            if (Webs[C].Considered)
              PairPriority = capAdd(PairPriority, Webs[C].Priority);
          }
        }
        if (Merged.Priority <= PairPriority || Merged.Priority <= 0)
          continue;

        // Accept: the absorbed webs are replaced by the merged one
        // (same-variable webs must stay node-disjoint). Ids track the
        // vector indices the coloring phase relies on.
        for (size_t I = Absorbed.size(); I-- > 0;)
          Webs.erase(Webs.begin() + Absorbed[I]);
        Webs.push_back(std::move(Merged));
        for (size_t I = 0; I < Webs.size(); ++I)
          Webs[I].Id = static_cast<int>(I);
        Changed = true;
      }
    }
  }
}

/// Splits a sparse web (§7.6.1): its L_REF nodes are grouped into
/// adjacency components, each closed under the internal-predecessor
/// rule, with wrap edges toward every escaping referencing path.
/// Returns the (possibly empty) list of profitable sub-webs.
std::vector<Web> splitSparseWeb(const CallGraph &CG, const RefSets &RS,
                                const Web &Parent) {
  int G = Parent.GlobalId;

  // 1. Components of the parent's L_REF nodes under direct adjacency.
  std::vector<int> RefNodes;
  for (int N : Parent.Nodes)
    if (RS.lref(N).test(G))
      RefNodes.push_back(N);
  std::map<int, int> Component;
  int NumComponents = 0;
  for (int Seed : RefNodes) {
    if (Component.count(Seed))
      continue;
    int Id = NumComponents++;
    std::vector<int> Work = {Seed};
    Component[Seed] = Id;
    while (!Work.empty()) {
      int N = Work.back();
      Work.pop_back();
      auto Visit = [&](int M) {
        if (RS.lref(M).test(G) && Parent.Nodes.count(M) &&
            !Component.count(M)) {
          Component[M] = Id;
          Work.push_back(M);
        }
      };
      for (int S : CG.node(N).Succs)
        Visit(S);
      for (int P : CG.node(N).Preds)
        Visit(P);
    }
  }
  if (NumComponents < 2)
    return {}; // Nothing to split apart.

  // 2. Close each component and merge any that collided.
  std::vector<NodeSet> SubNodes(
      NumComponents, NodeSet::withUniverse(CG.size()));
  for (auto &[Node, Id] : Component)
    SubNodes[Id].insert(Node);
  for (auto &W : SubNodes)
    closeSplitWeb(CG, W);
  std::vector<NodeSet> Merged;
  for (NodeSet W : SubNodes) {
    bool Absorbed = true;
    while (Absorbed) {
      Absorbed = false;
      for (auto It = Merged.begin(); It != Merged.end(); ++It) {
        if (W.intersects(*It)) {
          W.unionWith(*It);
          Merged.erase(It);
          closeSplitWeb(CG, W);
          Absorbed = true;
          break;
        }
      }
    }
    Merged.push_back(std::move(W));
  }
  if (Merged.size() < 2)
    return {};

  // 3. Materialize sub-webs with wrap edges and split-aware priorities.
  std::vector<Web> Out;
  for (NodeSet &Nodes : Merged) {
    Web W;
    W.GlobalId = G;
    W.IsSplit = true;
    W.Nodes = std::move(Nodes);

    long long Benefit = 0;
    for (int N : W.Nodes) {
      if (RS.refStores(N, G))
        W.Modifies = true;
      Benefit =
          capAdd(Benefit, capMul(RS.refFreq(N, G), CG.invocationCount(N)));
    }

    long long Overhead = 0;
    for (int N : W.Nodes) {
      bool HasInternalPred = false;
      for (int P : CG.node(N).Preds)
        if (W.Nodes.count(P)) {
          HasInternalPred = true;
          break;
        }
      if (!HasInternalPred) {
        W.EntryNodes.push_back(N);
        Overhead = capAdd(Overhead, capMul(CG.invocationCount(N),
                                           W.Modifies ? 2 : 1));
      }
      // Wrap edges: calls out of the sub-web toward any referencing
      // path (another sub-web or a region below it).
      for (int S : CG.node(N).Succs) {
        if (W.Nodes.count(S))
          continue;
        if (RS.lref(S).test(G) || RS.cref(S).test(G)) {
          W.WrapEdges[N].insert(S);
          Overhead = capAdd(Overhead, capMul(CG.edgeCount(N, S),
                                             W.Modifies ? 2 : 1));
        }
      }
      // Indirect calls from N: wrap when any procedure the call may
      // invoke (the proven target set when points-to resolved it,
      // every address-taken procedure otherwise) can reach the
      // variable.
      if (CG.node(N).MakesIndirectCalls) {
        for (int TId : CG.indirectTargetsOf(N)) {
          const CGNode &T = CG.node(TId);
          if (!T.IsAddressTaken || W.Nodes.count(T.Id))
            continue;
          if (RS.lref(T.Id).test(G) || RS.cref(T.Id).test(G)) {
            W.WrapIndirect.insert(N);
            Overhead = capAdd(Overhead, capMul(CG.invocationCount(N), 2));
            break;
          }
        }
      }
    }
    W.Priority = Benefit - Overhead;
    if (W.Priority <= 0) {
      W.Considered = false;
      W.DiscardReason = "split sub-web unprofitable";
    }
    Out.push_back(std::move(W));
  }
  return Out;
}

} // namespace

/// Discovers and materializes every web of global \p G. Web Ids are
/// left unassigned; buildWebs numbers them after the (possibly
/// parallel) per-global fan-out, in global-id order, so the result is
/// independent of scheduling. \p SccMembers maps an SCC id to its
/// member nodes (precomputed once; the cycle case below needs it).
std::vector<Web>
ipra::websForGlobal(const CallGraph &CG, const RefSets &RS, int G,
                    const std::vector<std::vector<int>> &SccMembers,
                    const WebOptions &Options) {
  std::vector<NodeSet> GWebs;
  // Union of every discovered web's nodes: the "is P already in some
  // web of G" test is one bit probe instead of a scan over GWebs.
  NodeSet Assigned = NodeSet::withUniverse(CG.size());

  auto MergeIn = [&GWebs, &Assigned](NodeSet W) {
    // Union overlapping webs of the same variable (Figure 2's merge).
    for (auto It = GWebs.begin(); It != GWebs.end();) {
      if (W.intersects(*It)) {
        W.unionWith(*It);
        It = GWebs.erase(It);
      } else {
        ++It;
      }
    }
    Assigned.unionWith(W);
    GWebs.push_back(std::move(W));
  };

  // Main loop: candidate web entry nodes have G in L_REF, not P_REF.
  for (int P = 0; P < CG.size(); ++P) {
    if (!RS.lref(P).test(G) || RS.pref(P).test(G) || Assigned.count(P))
      continue;
    NodeSet W = NodeSet::withUniverse(CG.size());
    NodeSet Seeds = NodeSet::withUniverse(CG.size());
    Seeds.insert(P);
    growWeb(CG, RS, G, W, std::move(Seeds));
    MergeIn(std::move(W));
  }

  // Cycle case (§4.1.2): nodes of recursive chains that reference G
  // but have G in P_REF all around the cycle never qualify as entry
  // candidates; seed a web with the whole cycle and enlarge it.
  for (int P = 0; P < CG.size(); ++P) {
    if (!RS.lref(P).test(G) || Assigned.count(P))
      continue;
    NodeSet Seeds = NodeSet::withUniverse(CG.size());
    for (int N : SccMembers[CG.sccId(P)])
      Seeds.insert(N);
    NodeSet W = NodeSet::withUniverse(CG.size());
    growWeb(CG, RS, G, W, std::move(Seeds));
    MergeIn(std::move(W));
  }

  // Materialize web records.
  std::vector<Web> Webs;
  for (NodeSet &Nodes : GWebs) {
    Web W;
    W.GlobalId = G;
    W.Nodes = std::move(Nodes);

    int LRefNodes = 0;
    long long Benefit = 0;
    for (int N : W.Nodes) {
      if (RS.lref(N).test(G))
        ++LRefNodes;
      if (RS.refStores(N, G))
        W.Modifies = true;
      Benefit = capAdd(
          Benefit, capMul(RS.refFreq(N, G), CG.invocationCount(N)));
    }
    long long EntryOverhead = 0;
    for (int N : W.Nodes) {
      bool HasInternalPred = false;
      for (int P : CG.node(N).Preds)
        if (W.Nodes.count(P)) {
          HasInternalPred = true;
          break;
        }
      if (!HasInternalPred) {
        W.EntryNodes.push_back(N);
        EntryOverhead = capAdd(
            EntryOverhead,
            capMul(CG.invocationCount(N), W.Modifies ? 2 : 1));
      }
    }
    W.Priority = Benefit - EntryOverhead;

    // Filters (§6.2, §7.4, §7.2).
    if (!Options.AssumeClosedWorld && W.Considered) {
      NodeSet Entries;
      for (int E : W.EntryNodes)
        Entries.insert(E);
      for (int N : W.Nodes) {
        if (!Entries.count(N) && CG.node(N).ExternallyVisible) {
          W.Considered = false;
          W.DiscardReason = "interior node externally visible";
          break;
        }
      }
    }
    const std::string &Name = RS.globalName(G);
    std::string StaticModule = moduleOfQualName(Name);
    if (Options.DiscardCrossModuleStaticWebs && !StaticModule.empty()) {
      for (int E : W.EntryNodes) {
        if (CG.node(E).Module != StaticModule) {
          W.Considered = false;
          W.DiscardReason = "static web entry crosses modules";
          break;
        }
      }
    }
    if (W.Considered && W.Nodes.size() == 1) {
      int Only = *W.Nodes.begin();
      if (RS.refFreq(Only, G) < Options.MinSingleNodeFreq) {
        W.Considered = false;
        W.DiscardReason = "single node, infrequent";
      }
    }
    if (W.Considered && !W.Nodes.empty()) {
      double Ratio =
          static_cast<double>(LRefNodes) / static_cast<double>(
                                               W.Nodes.size());
      if (Ratio < Options.MinLRefRatio) {
        W.Considered = false;
        W.DiscardReason = "too sparse";
      }
    }
    if (W.Considered && W.Priority <= 0) {
      W.Considered = false;
      W.DiscardReason = "unprofitable";
    }

    // §7.6.1: a web rejected as too sparse may split into tight
    // sub-webs that pay for their wrap code; they replace the parent.
    if (Options.SplitSparseWebs && !W.Considered &&
        W.DiscardReason == "too sparse") {
      std::vector<Web> Subs = splitSparseWeb(CG, RS, W);
      if (!Subs.empty()) {
        for (Web &Sub : Subs)
          Webs.push_back(std::move(Sub));
        continue;
      }
    }
    Webs.push_back(std::move(W));
  }
  return Webs;
}

std::vector<Web> ipra::buildWebs(const CallGraph &CG, const RefSets &RS,
                                 const WebOptions &Options) {
  std::vector<std::vector<int>> SccMembers(CG.size());
  for (int N = 0; N < CG.size(); ++N)
    SccMembers[CG.sccId(N)].push_back(N);

  // Discovery is independent per global: fan out over the eligible
  // globals, then concatenate the per-global results in global-id order
  // and number the webs — identical output at any thread count.
  size_t NumGlobals = static_cast<size_t>(RS.numEligible());
  std::vector<std::vector<Web>> PerGlobal(NumGlobals);
  parallelForEach(NumGlobals, resolveThreadCount(Options.NumThreads),
                  [&](size_t G) {
                    PerGlobal[G] = websForGlobal(
                        CG, RS, static_cast<int>(G), SccMembers, Options);
                  });

  std::vector<Web> Webs;
  for (std::vector<Web> &GWebs : PerGlobal)
    for (Web &W : GWebs) {
      W.Id = static_cast<int>(Webs.size());
      Webs.push_back(std::move(W));
    }
  if (Options.RemergeWebs)
    remergeWebs(CG, RS, Webs, Options);
  return Webs;
}

std::vector<std::string>
ipra::checkWebInvariants(const CallGraph &CG, const RefSets &RS,
                         const std::vector<Web> &Webs) {
  std::vector<std::string> Problems;
  auto Bad = [&Problems](const Web &W, const std::string &Message) {
    Problems.push_back("web " + std::to_string(W.Id) + " (" +
                       std::to_string(W.GlobalId) + "): " + Message);
  };

  for (const Web &W : Webs) {
    if (W.Nodes.empty()) {
      Bad(W, "empty web");
      continue;
    }

    // Entry/internal predecessor discipline.
    NodeSet Entries;
    for (int E : W.EntryNodes)
      Entries.insert(E);
    for (int N : W.Nodes) {
      bool IsEntry = Entries.count(N);
      for (int P : CG.node(N).Preds) {
        bool Inside = W.Nodes.count(P) != 0;
        if (IsEntry && Inside)
          Bad(W, "entry node " + CG.node(N).QualName +
                     " has an internal predecessor");
        if (!IsEntry && !Inside)
          Bad(W, "internal node " + CG.node(N).QualName +
                     " has external predecessor " + CG.node(P).QualName);
      }
    }

    // Split sub-webs intentionally coexist with other reference regions;
    // their correctness condition is wrap coverage: every call edge out
    // of the web toward a referencing path must be bracketed.
    if (W.IsSplit) {
      int G = W.GlobalId;
      for (int N : W.Nodes) {
        for (int S : CG.node(N).Succs) {
          if (W.Nodes.count(S))
            continue;
          if (!RS.lref(S).test(G) && !RS.cref(S).test(G))
            continue;
          auto It = W.WrapEdges.find(N);
          if (It == W.WrapEdges.end() || !It->second.count(S))
            Bad(W, "missing wrap on call " + CG.node(N).QualName + " -> " +
                       CG.node(S).QualName);
        }
        if (CG.node(N).MakesIndirectCalls) {
          bool AnyReachingTarget = false;
          for (int TId : CG.indirectTargetsOf(N)) {
            const CGNode &T = CG.node(TId);
            if (T.IsAddressTaken && !W.Nodes.count(T.Id) &&
                (RS.lref(T.Id).test(G) || RS.cref(T.Id).test(G)))
              AnyReachingTarget = true;
          }
          if (AnyReachingTarget && !W.WrapIndirect.count(N))
            Bad(W, "missing indirect wrap at " + CG.node(N).QualName);
        }
      }
      continue;
    }

    // Minimal-subgraph property: no ancestor or descendant outside the
    // web references the variable.
    int G = W.GlobalId;
    std::vector<bool> Seen(CG.size(), false);
    std::vector<int> Work;
    auto Sweep = [&](bool Forward) {
      std::fill(Seen.begin(), Seen.end(), false);
      Work.assign(W.Nodes.begin(), W.Nodes.end());
      for (int N : Work)
        Seen[N] = true;
      while (!Work.empty()) {
        int N = Work.back();
        Work.pop_back();
        const auto &Next = Forward ? CG.node(N).Succs : CG.node(N).Preds;
        for (int M : Next) {
          if (Seen[M])
            continue;
          Seen[M] = true;
          if (!W.Nodes.count(M) && RS.lref(M).test(G))
            Bad(W, std::string(Forward ? "descendant " : "ancestor ") +
                       CG.node(M).QualName + " references the variable");
          Work.push_back(M);
        }
      }
    };
    Sweep(/*Forward=*/true);
    Sweep(/*Forward=*/false);
  }

  // Node-disjointness of same-variable webs (word-parallel overlap).
  for (size_t A = 0; A < Webs.size(); ++A)
    for (size_t B = A + 1; B < Webs.size(); ++B) {
      if (Webs[A].GlobalId != Webs[B].GlobalId)
        continue;
      if (Webs[A].Nodes.intersects(Webs[B].Nodes))
        Bad(Webs[A], "overlaps web " + std::to_string(Webs[B].Id));
    }
  return Problems;
}
