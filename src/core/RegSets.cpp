//===- RegSets.cpp - FREE/CALLER/CALLEE/MSPILL computation ------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/RegSets.h"

#include "support/NodeSet.h"

#include <algorithm>
#include <cassert>

using namespace ipra;

namespace {

/// Selects up to \p Count registers from \p From, preferring registers
/// outside \p AvoidLast (Figure 6's Get_Registers with the child-MSPILL
/// priority order of §4.2.4).
RegMask pickRegisters(unsigned Count, RegMask From, RegMask AvoidLast) {
  RegMask Chosen = 0;
  for (RegMask Pass : {From & ~AvoidLast, From & AvoidLast}) {
    for (unsigned R = 0; R < pr32::NumRegs && Count > 0; ++R) {
      if (Pass & pr32::maskOf(R)) {
        Chosen |= pr32::maskOf(R);
        --Count;
      }
    }
    if (Count == 0)
      break;
  }
  return Chosen;
}

/// Topological order of a cluster's nodes (root first); the cluster is a
/// DAG by construction. \p ClusterNodes is the sorted member set
/// (including the root), \p InCluster the membership test, and
/// \p PendingPreds caller-provided scratch valid at the cluster's nodes
/// — universe-sized per-cluster allocations would dominate this pass.
template <typename MemberFn>
std::vector<int> clusterTopoOrder(const CallGraph &CG, const Cluster &C,
                                  const std::vector<int> &ClusterNodes,
                                  MemberFn InCluster,
                                  std::vector<int> &PendingPreds) {
  for (int N : ClusterNodes)
    PendingPreds[N] = 0;
  for (int N : ClusterNodes) {
    if (N == C.Root)
      continue;
    for (int P : CG.node(N).Preds)
      if (InCluster(P))
        ++PendingPreds[N];
  }
  std::vector<int> Order, Ready = {C.Root};
  while (!Ready.empty()) {
    int N = Ready.back();
    Ready.pop_back();
    Order.push_back(N);
    for (int S : CG.node(N).Succs) {
      if (S == C.Root || !InCluster(S))
        continue;
      if (--PendingPreds[S] == 0)
        Ready.push_back(S);
    }
  }
  assert(Order.size() == ClusterNodes.size() && "cluster is not a DAG");
  return Order;
}

} // namespace

std::vector<ProcDirectives> ipra::computeRegisterSets(
    const CallGraph &CG, const std::vector<Cluster> &Clusters,
    const std::vector<Web> &Webs, const RegSetOptions &Options) {
  int N = CG.size();
  std::vector<ProcDirectives> Sets(N); // Standard convention by default.

  // Registers reserved for promoted webs, per node.
  std::vector<RegMask> WebRegs(N, 0);
  for (const Web &W : Webs)
    if (W.AssignedReg >= 0)
      for (int Node : W.Nodes)
        WebRegs[Node] |= pr32::maskOf(static_cast<unsigned>(W.AssignedReg));

  // Which cluster (index) each node roots, if any.
  std::vector<int> RootsCluster(N, -1);
  for (size_t C = 0; C < Clusters.size(); ++C)
    RootsCluster[Clusters[C].Root] = static_cast<int>(C);

  // Bottom-up over cluster roots: deeper roots first. RPO order places
  // dominators first, so reversing it processes children before parents.
  std::vector<int> ClusterOrder;
  for (size_t C = 0; C < Clusters.size(); ++C)
    ClusterOrder.push_back(static_cast<int>(C));
  std::vector<int> RPOIdx(N, 0);
  {
    int I = 0;
    for (int Node : CG.rpo())
      RPOIdx[Node] = I++;
  }
  std::sort(ClusterOrder.begin(), ClusterOrder.end(), [&](int A, int B) {
    return RPOIdx[Clusters[A].Root] > RPOIdx[Clusters[B].Root];
  });

  std::vector<RegMask> Avail(N, 0);
  // Register footprint of a processed cluster (for the improved-FREE
  // extension): every register its subtree may touch without saving.
  std::vector<RegMask> Footprint(N, 0);

  // Per-cluster scratch shared across iterations and stamped by cluster
  // index; clusters are small, so universe-sized allocations per
  // cluster would dominate the pass.
  std::vector<int> Stamp(N, -1), PendingPreds(N, 0), ClusterNodes;
  std::vector<RegMask> Downstream(N, 0);

  for (int CI : ClusterOrder) {
    const Cluster &C = Clusters[CI];
    int R = C.Root;
    ClusterNodes.assign(C.Members.begin(), C.Members.end());
    ClusterNodes.push_back(R);
    std::sort(ClusterNodes.begin(), ClusterNodes.end());
    for (int Node : ClusterNodes)
      Stamp[Node] = CI;
    auto InCluster = [&](int Node) { return Stamp[Node] == CI; };

    // Child MSPILL sets steer the selection order (§4.2.4).
    RegMask ChildMSpill = 0;
    for (int M : C.Members)
      if (RootsCluster[M] >= 0)
        ChildMSpill |= Sets[M].MSpill;

    // Root initialization.
    RegMask StdCallee = pr32::calleeSavedMask();
    RegMask ClusterWebRegs = 0;
    for (int Node : ClusterNodes)
      ClusterWebRegs |= WebRegs[Node];

    Sets[R].Callee = pickRegisters(CG.node(R).CalleeRegsNeeded,
                                   StdCallee & ~WebRegs[R], ChildMSpill);
    Avail[R] = StdCallee & ~Sets[R].Callee;
    if (Options.RelaxWebAvail)
      Avail[R] &= ~WebRegs[R];
    else
      Avail[R] &= ~ClusterWebRegs;

    RegMask Used = 0;
    std::vector<int> Order =
        clusterTopoOrder(CG, C, ClusterNodes, InCluster, PendingPreds);
    for (int Node : Order) {
      if (Node == R)
        continue;
      // AVAIL[N] = intersection of AVAIL over immediate predecessors
      // (property [2] guarantees they are all cluster members).
      RegMask A = ~RegMask(0);
      for (int P : CG.node(Node).Preds)
        A &= Avail[P];
      if (Options.RelaxWebAvail)
        A &= ~WebRegs[Node];
      Avail[Node] = A;

      if (RootsCluster[Node] >= 0) {
        // A member that roots a deeper cluster: move what we can of its
        // MSPILL up, and let it use the overlap of its CALLEE for free.
        Used |= Sets[Node].MSpill & A;
        Sets[Node].MSpill &= ~A;
        Used |= Sets[Node].Callee & A;
        RegMask NewFree = Sets[Node].Callee & A;
        Sets[Node].Free |= NewFree;
        Sets[Node].Callee &= ~NewFree;
        // AVAIL[P] is defined as the registers "available for free use
        // along calls out of P" (§4.2.4). Nothing the child root or its
        // cluster uses without saving qualifies: its new FREE registers
        // hold live values across its calls, and its cluster's footprint
        // is clobbered by the deeper members. Figure 6 elides this
        // subtraction; without it the current cluster would hand a child
        // root's live registers to the child root's successors.
        Avail[Node] &= ~(Sets[Node].Free | Footprint[Node]);
      } else {
        RegMask Free =
            pickRegisters(CG.node(Node).CalleeRegsNeeded, A, ChildMSpill);
        Sets[Node].Free |= Free;
        Avail[Node] &= ~Free;
        Sets[Node].Callee &= ~(Free | Avail[Node]);
        Used |= Free;
      }
    }

    Sets[R].MSpill |= Used;
    Sets[R].IsClusterRoot = true;

    // Post-pass (§4.2.4): callee-saves registers the root spills anyway
    // become caller-saves scratch at interior nodes they flow through.
    for (int Q : C.Members)
      if (RootsCluster[Q] < 0)
        Sets[Q].Caller |= Avail[Q] & Sets[R].MSpill;

    // Optional §7.6.2 extension: a root-spilled register unused on every
    // path below Q may join FREE[Q].
    if (Options.ImprovedFreeSets) {
      for (int Node : ClusterNodes)
        Downstream[Node] = 0;
      for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
        int Node = *It;
        RegMask D = 0;
        for (int S : CG.node(Node).Succs) {
          if (!InCluster(S) || S == R)
            continue;
          RegMask SUse = RootsCluster[S] >= 0
                             ? Footprint[S]
                             : (Sets[S].Free | Avail[S] | WebRegs[S]);
          D |= SUse | Downstream[S];
        }
        Downstream[Node] = D;
      }
      for (int Q : C.Members) {
        if (RootsCluster[Q] >= 0)
          continue;
        // Only registers that flowed down to Q unused (still AVAIL
        // there) qualify: an upstream node may hold live values in its
        // own FREE registers across the call chain to Q.
        RegMask Add = Sets[R].MSpill & Avail[Q] & ~Downstream[Q] &
                      ~WebRegs[Q];
        Sets[Q].Free |= Add;
        // A register upgraded to FREE must not stay in the CALLER
        // augmentation (it now survives calls).
        Sets[Q].Caller &= ~Add;
      }
    }

    // Record this cluster's footprint for enclosing clusters.
    RegMask FP = Sets[R].MSpill | Sets[R].Callee;
    for (int Node : ClusterNodes) {
      FP |= Sets[Node].Free | WebRegs[Node] |
            (Sets[Node].Caller & pr32::calleeSavedMask());
      if (Node != R && RootsCluster[Node] >= 0)
        FP |= Footprint[Node] | Sets[Node].Callee;
    }
    Footprint[R] = FP;
  }
  return Sets;
}

std::vector<std::string> ipra::checkRegisterSetInvariants(
    const CallGraph &CG, const std::vector<Cluster> &Clusters,
    const std::vector<Web> &Webs,
    const std::vector<ProcDirectives> &Sets) {
  std::vector<std::string> Problems;
  int N = CG.size();

  std::vector<RegMask> WebRegs(N, 0);
  for (const Web &W : Webs)
    if (W.AssignedReg >= 0)
      for (int Node : W.Nodes)
        WebRegs[Node] |= pr32::maskOf(static_cast<unsigned>(W.AssignedReg));

  std::vector<bool> IsRoot(N, false);
  for (const Cluster &C : Clusters)
    IsRoot[C.Root] = true;

  for (int Node = 0; Node < N; ++Node) {
    const ProcDirectives &D = Sets[Node];
    std::string Name = CG.node(Node).QualName;
    if (D.Free & D.Callee)
      Problems.push_back(Name + ": FREE and CALLEE overlap");
    if (D.Free & ~pr32::calleeSavedMask())
      Problems.push_back(Name + ": FREE contains caller-saves registers");
    if (D.MSpill & ~pr32::calleeSavedMask())
      Problems.push_back(Name + ": MSPILL contains caller-saves registers");
    if (D.Free & WebRegs[Node])
      Problems.push_back(Name + ": FREE contains a web register");
    if (D.MSpill & WebRegs[Node])
      Problems.push_back(Name + ": MSPILL contains a web register");
    if ((D.Caller & pr32::calleeSavedMask()) & WebRegs[Node])
      Problems.push_back(Name + ": CALLER gained a web register");
    if (D.MSpill && !D.IsClusterRoot)
      Problems.push_back(Name + ": MSPILL at a non-root node");
  }

  // Along any call path inside a cluster, a FREE register upstream (a
  // live value may be held in it across the call chain) must not be
  // FREE or caller-saves scratch downstream.
  for (const Cluster &C : Clusters) {
    NodeSet InCluster = NodeSet::withUniverse(CG.size());
    for (int M : C.Members)
      InCluster.insert(M);
    InCluster.insert(C.Root);
    for (int Q : C.Members) {
      // Forward reachability from Q within the cluster.
      NodeSet Seen = NodeSet::withUniverse(CG.size());
      std::vector<int> Work = {Q};
      while (!Work.empty()) {
        int Cur = Work.back();
        Work.pop_back();
        for (int S : CG.node(Cur).Succs) {
          if (!InCluster.count(S) || S == C.Root || Seen.count(S))
            continue;
          Seen.insert(S);
          Work.push_back(S);
        }
      }
      for (int D : Seen) {
        RegMask DownUse =
            Sets[D].Free | (Sets[D].Caller & pr32::calleeSavedMask());
        if (Sets[Q].Free & DownUse)
          Problems.push_back(CG.node(Q).QualName + ": FREE register is "
                             "reused along the path to " +
                             CG.node(D).QualName);
      }
    }
  }

  // FREE registers at any node must be covered by the MSPILL of roots
  // strictly dominating it (some ancestor saves those registers).
  for (int Node = 0; Node < N; ++Node) {
    if (!Sets[Node].Free)
      continue;
    RegMask Covered = 0;
    for (const Cluster &C : Clusters)
      if (C.Root != Node && CG.dominates(C.Root, Node))
        Covered |= Sets[C.Root].MSpill;
    if (Sets[Node].Free & ~Covered)
      Problems.push_back(CG.node(Node).QualName +
                         ": FREE registers not spilled by any dominating "
                         "cluster root");
  }
  return Problems;
}
