//===- Webs.h - Global variable webs over the call graph -------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Web identification (§4.1.1-§4.1.2, Figure 2). A web for a global
/// variable is a minimal subgraph of the call graph such that the
/// variable is referenced in no ancestor and no descendant of the
/// subgraph. Candidate entry nodes have the variable in L_REF but not
/// P_REF; webs are grown through successors with the variable in L_REF
/// or C_REF, then enlarged until no node has both internal and external
/// predecessors. Recursive chains whose cycle nodes all carry the
/// variable in P_REF form webs of their own (the cycle-web special case
/// in §4.1.2). Overlapping webs of the same variable merge.
///
/// Web filtering (§6.2) discards webs that are too sparse or consist of
/// a single node with infrequent access; the statics rule (§7.4)
/// discards webs whose entry nodes fall outside the static's module.
///
/// Web node membership is a NodeSet (bitset over call-graph node ids):
/// growth, merging and disjointness checks are word-parallel, and
/// iteration stays in ascending node order — the same order std::set
/// gave — so every downstream consumer sees identical sequences.
/// Discovery is independent per global variable; with
/// WebOptions::NumThreads > 1 the per-global discoveries run on a
/// thread pool and are merged in global-id order, making the output
/// byte-identical at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_WEBS_H
#define IPRA_CORE_WEBS_H

#include "core/RefSets.h"
#include "support/NodeSet.h"

#include <map>
#include <string>
#include <vector>

namespace ipra {

/// One web of a global variable.
struct Web {
  int Id = -1;
  int GlobalId = -1;
  NodeSet Nodes;
  /// Nodes with no predecessor inside the web; they load the variable at
  /// entry and store it back at exit.
  std::vector<int> EntryNodes;
  bool Modifies = false; ///< Some web node stores the variable.
  long long Priority = 0;
  int AssignedReg = -1;          ///< Filled by coloring.
  bool Considered = true;        ///< False when filtered out (§6.2/§7.4).
  bool IsRemerged = false;       ///< Produced by §7.6.1 re-merging.
  std::string DiscardReason;

  // --- §7.6.1 web splitting ---------------------------------------------
  /// True when this web was split off a sparse web: other reference
  /// regions of the variable exist elsewhere in the graph, and the
  /// WrapEdges below keep memory synchronized around calls toward them.
  bool IsSplit = false;
  /// Per web node: successors outside the web whose subtree references
  /// the variable; calls along these edges store the register back
  /// before (when Modifies) and reload it after.
  std::map<int, NodeSet> WrapEdges;
  /// Web nodes whose indirect calls can reach a referencing procedure.
  NodeSet WrapIndirect;
};

/// Filtering knobs (§6.2, §7.4).
struct WebOptions {
  /// Minimum ratio of L_REF nodes to total nodes before a web counts as
  /// "too sparse".
  double MinLRefRatio = 0.2;
  /// Minimum access frequency for single-node webs.
  long long MinSingleNodeFreq = 2;
  /// Discard webs of statics whose entry nodes cross modules (§7.4).
  bool DiscardCrossModuleStaticWebs = true;
  /// §7.6.1: split webs discarded as too sparse into tight sub-webs
  /// that bracket calls toward other reference regions with store/reload
  /// code.
  bool SplitSparseWebs = false;
  /// §7.2: false when analyzing a partial call graph - webs whose
  /// non-entry nodes are externally visible are discarded (an unknown
  /// caller could enter the web bypassing its entries).
  bool AssumeClosedWorld = true;
  /// §7.6.1: re-merge independent webs of one variable when the merged
  /// web (sharing entry nodes higher up) has a better priority than the
  /// pair, "at the expense of extra interferences".
  bool RemergeWebs = false;
  /// Threads for per-global web discovery: 1 runs serially on the
  /// calling thread, 0 defers to IPRA_THREADS / the hardware count.
  /// Output is identical at any value.
  int NumThreads = 1;
};

/// Identifies every web, computes entry nodes, priorities (weighted
/// reference benefit minus entry-node load/store overhead, §4.1.3) and
/// applies the filters.
std::vector<Web> buildWebs(const CallGraph &CG, const RefSets &RS,
                           const WebOptions &Options = {});

/// Discovers and materializes every web of the single global \p G —
/// the unit of work buildWebs fans out over, exposed so the delta
/// analyzer can re-discover exactly the damaged globals and splice the
/// results over the retained per-global lists. Web Ids are left
/// unassigned (-1); the caller numbers them after concatenating in
/// global-id order. \p SccMembers maps an SCC id to its member nodes
/// (the §4.1.2 cycle case needs it). The §7.6.1 re-merge pass is NOT
/// applied here: it is a cross-global, whole-graph transformation that
/// buildWebs runs over the concatenated list.
std::vector<Web> websForGlobal(const CallGraph &CG, const RefSets &RS, int G,
                               const std::vector<std::vector<int>> &SccMembers,
                               const WebOptions &Options);

/// Verification helper used by tests and property suites: returns every
/// violated web invariant (empty = valid). Checks node-disjointness per
/// variable, entry-node predecessor rules, and P_REF/C_REF exclusion.
std::vector<std::string> checkWebInvariants(const CallGraph &CG,
                                            const RefSets &RS,
                                            const std::vector<Web> &Webs);

} // namespace ipra

#endif // IPRA_CORE_WEBS_H
