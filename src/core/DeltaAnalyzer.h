//===- DeltaAnalyzer.h - Sub-linear incremental re-analysis ----*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The delta analyzer: when one module's summary changes between
/// analyzer runs, re-deriving the whole program database from scratch
/// costs O(program) even though the edit's influence is usually local.
/// This class retains the previous run's call graph, reference sets and
/// per-global web lists, diffs the new summaries against the old ones
/// (SummaryDiff), maps the delta onto the Tarjan SCC condensation to
/// obtain a minimal *damage region*, and recomputes only the refsets
/// and webs whose inputs lie in that region — splicing the results into
/// the retained state so the output stays byte-identical to a cold full
/// analysis (the §7.1 "keeping summary data up to date" cost model,
/// driven sub-linear).
///
/// Damage derivation (why byte-identity holds — see DESIGN.md §11):
///
///  * applyProcDelta patches the graph in place only when the edit is
///    expressible without re-laying node ids or the eligible-global
///    universe; anything else falls back to a cold full analysis,
///    which is trivially identical.
///  * RefSets::applyDelta recomputes P_REF/C_REF per SCC with worklist
///    sweeps over the condensation, reading retained values at the
///    region boundary (exact, because every node's row equals its SCC's
///    shared value). Every global whose L/P/C_REF bit flips anywhere is
///    collected in `Touched`.
///  * A retained web list of global g is reusable iff g is untouched
///    AND no web of g (kept or discarded) intersects the node-damage
///    set NDP: web discovery for g reads only g's rows (unchanged) plus
///    adjacency, SCC membership, invocation counts, edge counts and
///    callee leaf-ness at the nodes the old discovery visited — all
///    unchanged outside NDP, so discovery replays identically.
///  * Coloring, clusters, register sets, §7.6.2 propagation and
///    database assembly are recomputed in full by the shared
///    finishFromWebs stage — they are a small fraction of analyzer
///    time, and running the identical code on identical inputs is the
///    strongest identity argument available.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_DELTAANALYZER_H
#define IPRA_CORE_DELTAANALYZER_H

#include "core/Analyzer.h"

#include <memory>
#include <string>
#include <vector>

namespace ipra {

/// How the last DeltaAnalyzer::analyze call produced its database.
enum class DeltaMode {
  Full,        ///< Cold full analysis (first run, or a fallback).
  Incremental, ///< Damage-region re-analysis over retained state.
};

/// Observability for one analyze() call.
struct DeltaStats {
  DeltaMode Mode = DeltaMode::Full;
  /// Why a full analysis ran ("first analysis", or the structural
  /// condition the delta path cannot express). Empty when incremental.
  std::string FallbackReason;
  int ChangedProcs = 0;    ///< Patched call-graph nodes.
  int DamagedSccs = 0;     ///< SCCs whose P_REF/C_REF were recomputed.
  int TotalSccs = 0;
  int DamagedGlobals = 0;  ///< Globals whose webs were re-discovered.
  int TotalGlobals = 0;
  /// Fraction of per-global web lists spliced in unchanged.
  double reuseRatio() const {
    return TotalGlobals ? 1.0 - static_cast<double>(DamagedGlobals) /
                                    TotalGlobals
                        : 1.0;
  }
};

/// Stateful wrapper around the program analyzer. The first analyze()
/// primes retained state with a full run; subsequent calls diff the
/// summaries and take the damage-region path when the edit is
/// expressible, falling back to a full run (and re-priming) otherwise.
/// Either way the returned database is byte-identical to
/// runAnalyzer(Summaries, Options, Profile).
class DeltaAnalyzer {
public:
  DeltaAnalyzer();
  ~DeltaAnalyzer();
  DeltaAnalyzer(DeltaAnalyzer &&) noexcept;
  DeltaAnalyzer &operator=(DeltaAnalyzer &&) noexcept;

  /// Analyzes \p Summaries, incrementally when possible. The reference
  /// stays valid until the next analyze() call. Changing \p Options
  /// (other than NumThreads) or \p Profile between calls forces a full
  /// run.
  const ProgramDatabase &analyze(const std::vector<ModuleSummary> &Summaries,
                                 const AnalyzerOptions &Options,
                                 const CallProfile &Profile = {});

  /// Stats of the last analyze() call (sub-phase timings reflect the
  /// work actually done: damage-region timings on the incremental
  /// path).
  const AnalyzerStats &stats() const { return Stats; }
  const DeltaStats &deltaStats() const { return Delta; }
  bool primed() const { return Primed; }

private:
  void primeFull(const std::vector<ModuleSummary> &Summaries,
                 const CallProfile &Profile);
  /// The incremental path. Returns false — with \p Reason set and *no
  /// retained state mutated* — when the delta is inexpressible; the
  /// caller then re-primes.
  bool tryIncremental(const std::vector<ModuleSummary> &Summaries,
                      const CallProfile &Profile, std::string &Reason);
  /// True when retained-state splicing supports the configured options.
  bool retainable(std::string &Reason) const;
  /// Moves \p PerGlobal's webs into Webs/WebStart in global-id order
  /// and numbers them — exactly the list buildWebs emits for the same
  /// inputs.
  void storeWebs(std::vector<std::vector<Web>> PerGlobal);

  bool Primed = false;
  AnalyzerOptions Opts;
  CallProfile Prof;
  std::vector<ModuleSummary> PrevSummaries;
  /// RS holds a reference into *CG; their lifetimes move together.
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<RefSets> RS;
  /// Retained discovery output, flattened in global-id order: global
  /// g's webs are Webs[WebStart[g]..WebStart[g+1]). Includes discarded
  /// webs (the splice must reproduce buildWebs' full list, and a
  /// discarded web still marks where its global's reference region lies
  /// for damage testing). The webs carry the last run's register
  /// assignments (finishFromWebs colors in place); the incremental path
  /// resets them to the uncolored state before re-finishing.
  std::vector<Web> Webs;
  std::vector<int> WebStart;
  ProgramDatabase Current;
  AnalyzerStats Stats;
  DeltaStats Delta;
};

} // namespace ipra

#endif // IPRA_CORE_DELTAANALYZER_H
