//===- RefSets.h - L_REF / P_REF / C_REF dataflow ---------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural dataflow of §4.1.2 over the eligible globals.
/// A global is eligible for promotion when it fits in one register and
/// is never aliased (address-taken) in any module. For each call-graph
/// node P and the set of eligible globals:
///
///   L_REF[P]  globals accessed within P;
///   P_REF[P]  globals accessed somewhere on a call chain from a start
///             node to P (exclusive of P);
///   C_REF[P]  globals accessed somewhere on a call chain starting at P
///             (exclusive of P);
///
/// defined by the fixpoint equations
///   P_REF[P] = U over predecessors i of (P_REF[i] U L_REF[i])
///   C_REF[P] = U over successors  i of (C_REF[i] U L_REF[i]).
///
/// Rather than iterating those equations to a fixpoint, the sets are
/// computed over the Tarjan SCC condensation of the call graph: within
/// a cyclic SCC every node is an ancestor and descendant of every
/// other, so all members share one P_REF (and one C_REF) value, and
/// the condensation is a DAG that one forward sweep (ancestors first)
/// and one backward sweep (descendants first) solve exactly —
/// O((V + E) x words) instead of O(iterations x E x words).
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_REFSETS_H
#define IPRA_CORE_REFSETS_H

#include "callgraph/CallGraph.h"
#include "support/DynBitset.h"

#include <string>
#include <vector>

namespace ipra {

/// Eligible-global universe plus the three reference sets per node.
class RefSets {
public:
  /// With \p ClosedWorld false (a partial call graph, §7.2), only
  /// module-private statics are eligible: an exported global might be
  /// accessed by code outside the analyzed modules.
  explicit RefSets(const CallGraph &CG, bool ClosedWorld = true);

  int numEligible() const { return static_cast<int>(Names.size()); }

  /// Id of an eligible global, or -1 when the name is not eligible.
  int globalId(const std::string &QualName) const;
  const std::string &globalName(int Id) const { return Names[Id]; }

  const DynBitset &lref(int Node) const { return LRef[Node]; }
  const DynBitset &pref(int Node) const { return PRef[Node]; }
  const DynBitset &cref(int Node) const { return CRef[Node]; }

  /// Loop-weighted local access frequency of global \p Id in \p Node.
  long long refFreq(int Node, int Id) const;
  /// True if \p Node stores global \p Id.
  bool refStores(int Node, int Id) const;

  /// Incremental maintenance for the delta analyzer, run after the
  /// underlying CallGraph was patched in place (same node universe,
  /// same eligible-global universe — the caller guarantees both).
  ///
  /// \p RefChangedNodes are the nodes whose GlobalRefs were re-pointed;
  /// their L_REF rows are rebuilt from scratch. \p DamageSeedNodes is a
  /// superset also naming every node whose adjacency, SCC membership,
  /// or recursion flag changed. Their SCCs seed two worklist sweeps
  /// over the new condensation that recompute P_REF/C_REF only where a
  /// value actually changes, reading retained per-node values at the
  /// region boundary (valid because every member of an SCC holds
  /// exactly the shared SCC value, so an untouched node's row *is* the
  /// cold value of its SCC).
  ///
  /// \p Touched accumulates (via XOR with the old rows) every eligible
  /// global id whose L_REF/P_REF/C_REF bit changed at any node; it must
  /// be sized to numEligible(). Returns the number of distinct SCCs
  /// recomputed across both sweeps.
  int applyDelta(const std::vector<int> &RefChangedNodes,
                 const std::vector<int> &DamageSeedNodes,
                 DynBitset &Touched);

private:
  /// One local reference record: global \p Id is accessed in the node
  /// with loop-weighted frequency \p Freq; \p Stores when written.
  struct LocalRef {
    int Id;
    long long Freq;
    bool Stores;
  };

  /// (Re)derives LRef[Node] and Local[Node] from the node's current
  /// GlobalRefs (shared by the constructor and applyDelta).
  void rebuildLocalRow(int Node);

  const CallGraph &CG;
  std::vector<std::string> Names;
  std::map<std::string, int> Ids;
  std::vector<DynBitset> LRef, PRef, CRef;
  /// Per node: local references sorted by global id (binary-searched by
  /// refFreq/refStores, which sit in the analyzer's hot loops).
  std::vector<std::vector<LocalRef>> Local;
};

} // namespace ipra

#endif // IPRA_CORE_REFSETS_H
