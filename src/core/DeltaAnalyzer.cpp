//===- DeltaAnalyzer.cpp - Sub-linear incremental re-analysis ---------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/DeltaAnalyzer.h"

#include "core/AnalyzerInternal.h"
#include "summary/SummaryDiff.h"
#include "support/NodeSet.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <map>

using namespace ipra;
using analyzer_detail::finishFromWebs;
using analyzer_detail::webOptionsFor;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

/// Everything the output depends on except thread count (NumThreads is
/// excluded from every fingerprint; it must not force a full run).
bool sameOptions(const AnalyzerOptions &A, const AnalyzerOptions &B) {
  const WebOptions &WA = A.Webs, &WB = B.Webs;
  return A.SpillMotion == B.SpillMotion && A.Promotion == B.Promotion &&
         A.WebPool == B.WebPool && A.BlanketCount == B.BlanketCount &&
         WA.MinLRefRatio == WB.MinLRefRatio &&
         WA.MinSingleNodeFreq == WB.MinSingleNodeFreq &&
         WA.DiscardCrossModuleStaticWebs ==
             WB.DiscardCrossModuleStaticWebs &&
         WA.SplitSparseWebs == WB.SplitSparseWebs &&
         WA.RemergeWebs == WB.RemergeWebs &&
         A.Clusters.RootBenefitThreshold ==
             B.Clusters.RootBenefitThreshold &&
         A.RegSets.RelaxWebAvail == B.RegSets.RelaxWebAvail &&
         A.RegSets.ImprovedFreeSets == B.RegSets.ImprovedFreeSets &&
         A.CallerSavePropagation == B.CallerSavePropagation &&
         A.AssumeClosedWorld == B.AssumeClosedWorld &&
         A.PointsTo == B.PointsTo;
}

bool sameProfile(const CallProfile &A, const CallProfile &B) {
  return A.CallCounts == B.CallCounts && A.EdgeCounts == B.EdgeCounts;
}

} // namespace

DeltaAnalyzer::DeltaAnalyzer() = default;
DeltaAnalyzer::~DeltaAnalyzer() = default;
DeltaAnalyzer::DeltaAnalyzer(DeltaAnalyzer &&) noexcept = default;
DeltaAnalyzer &DeltaAnalyzer::operator=(DeltaAnalyzer &&) noexcept =
    default;

bool DeltaAnalyzer::retainable(std::string &Reason) const {
  if (Opts.Promotion == PromotionMode::Blanket) {
    // Blanket webs are a cross-global top-N selection: any touched
    // global can displace any other, so there is no per-global splice.
    Reason = "blanket promotion selects webs across globals";
    return false;
  }
  if (Opts.Promotion != PromotionMode::None && Opts.Webs.RemergeWebs) {
    // §7.6.1 re-merging runs over the concatenated whole-program list
    // (idom-based), coupling webs across the splice boundary.
    Reason = "web re-merging couples webs across globals";
    return false;
  }
  return true;
}

void DeltaAnalyzer::storeWebs(std::vector<std::vector<Web>> PerGlobal) {
  size_t Total = 0;
  for (const std::vector<Web> &GWebs : PerGlobal)
    Total += GWebs.size();
  Webs.clear();
  Webs.reserve(Total);
  WebStart.assign(PerGlobal.size() + 1, 0);
  for (size_t G = 0; G < PerGlobal.size(); ++G) {
    WebStart[G] = static_cast<int>(Webs.size());
    for (Web &W : PerGlobal[G]) {
      W.Id = static_cast<int>(Webs.size());
      Webs.push_back(std::move(W));
    }
  }
  WebStart[PerGlobal.size()] = static_cast<int>(Webs.size());
}

void DeltaAnalyzer::primeFull(const std::vector<ModuleSummary> &Summaries,
                              const CallProfile &Profile) {
  Stats = AnalyzerStats();
  Clock::time_point T0 = Clock::now();
  CG = std::make_unique<CallGraph>(Summaries, Profile, Opts.PointsTo);
  RS = std::make_unique<RefSets>(*CG, Opts.AssumeClosedWorld);
  Stats.EligibleGlobals = RS->numEligible();
  Stats.EscapesRefuted = static_cast<int>(CG->escapesRefuted());
  Stats.IndirectCallersResolved =
      static_cast<int>(CG->indirectCallersResolved());
  Stats.RefSetsMs = msSince(T0);

  // Discovery, keeping the per-global segments. Fanning out over
  // websForGlobal and flattening in global-id order is exactly
  // buildWebs (which the retainable() gate restricts us to the
  // remerge-free case of); Blanket and non-retainable configurations
  // go through the stock discovery stage instead.
  std::string Unused;
  if (Opts.Promotion == PromotionMode::None || !retainable(Unused)) {
    Webs = analyzer_detail::discoverPromotionWebs(*CG, *RS, Opts, Stats);
    WebStart.clear();
  } else {
    T0 = Clock::now();
    std::vector<std::vector<int>> SccMembers(CG->size());
    for (int N = 0; N < CG->size(); ++N)
      SccMembers[CG->sccId(N)].push_back(N);
    WebOptions WO = webOptionsFor(Opts);
    std::vector<std::vector<Web>> PerGlobal(
        static_cast<size_t>(RS->numEligible()));
    parallelForEach(PerGlobal.size(), resolveThreadCount(WO.NumThreads),
                    [&](size_t G) {
                      PerGlobal[G] = websForGlobal(
                          *CG, *RS, static_cast<int>(G), SccMembers, WO);
                    });
    Stats.WebsMs = msSince(T0);
    storeWebs(std::move(PerGlobal));
  }

  Current = finishFromWebs(*CG, *RS, Webs, Opts, Stats);
  PrevSummaries = Summaries;
  Primed = true;
}

bool DeltaAnalyzer::tryIncremental(
    const std::vector<ModuleSummary> &Summaries, const CallProfile &Profile,
    std::string &Reason) {
  ProgramSummaryDelta PD = diffProgramSummaries(PrevSummaries, Summaries);
  if (PD.ModuleSequenceChanged) {
    Reason = "module sequence changed";
    return false;
  }

  Delta.TotalSccs = 0;
  for (int N = 0; N < CG->size(); ++N)
    Delta.TotalSccs = std::max(Delta.TotalSccs, CG->sccId(N) + 1);
  Delta.TotalGlobals = RS->numEligible();

  if (PD.identical()) {
    // Allocation-neutral rebuild of some module: nothing to do.
    Delta.Mode = DeltaMode::Incremental;
    return true;
  }

  for (const ModuleSummaryDelta &MD : PD.ChangedModules) {
    if (MD.ProcSequenceChanged) {
      // Adding/removing/reordering procedures re-lays node ids; ids
      // leak into every iteration order, so splicing cannot reproduce
      // cold bytes.
      Reason = "procedure sequence changed in " + MD.Module;
      return false;
    }
    if (MD.AddrTakenSetChanged) {
      // The address-taken set is the fan-out universe of every
      // unresolved indirect call — a change damages all of them.
      Reason = "address-taken set changed in " + MD.Module;
      return false;
    }
    // MD.GlobalsChanged is not an instant fallback: escape-verdict
    // drift that does not flip a merged fact is absorbed, and
    // applyProcDelta's facts precheck rejects the rest.
  }

  // Node ids of summarized procedures are running offsets in module /
  // procedure order; with both sequences unchanged they are stable.
  std::map<std::string, int> ModuleOffset;
  {
    int Off = 0;
    for (const ModuleSummary &S : PrevSummaries) {
      ModuleOffset[S.Module] = Off;
      Off += static_cast<int>(S.Procs.size());
    }
  }
  std::vector<CallGraph::ProcPatch> Patches;
  for (const ModuleSummaryDelta &MD : PD.ChangedModules) {
    int Off = ModuleOffset.at(MD.Module);
    const ModuleSummary *NewMod = nullptr;
    for (const ModuleSummary &S : Summaries)
      if (S.Module == MD.Module) {
        NewMod = &S;
        break;
      }
    for (int PI : MD.ChangedProcs)
      Patches.push_back({Off + PI, &NewMod->Procs[PI]});
  }

  Clock::time_point T0 = Clock::now();

  // --- Pre-patch snapshots: the damage terms compare against these.
  std::vector<long long> OldInv = CG->invocations();
  std::vector<int> OldSccIds = CG->sccIds();
  struct NodeSnapshot {
    int Node;
    std::vector<int> Succs, Preds;
  };
  std::vector<NodeSnapshot> Snaps;
  Snaps.reserve(Patches.size());
  for (const CallGraph::ProcPatch &P : Patches)
    Snaps.push_back(
        {P.Node, CG->node(P.Node).Succs, CG->node(P.Node).Preds});

  std::string FB;
  if (!CG->applyProcDelta(Summaries, Profile, Patches, FB)) {
    Reason = FB; // No mutation happened; a cold re-prime is safe.
    return false;
  }
  // From here on the graph is patched: the path must run to completion
  // (every remaining step is infallible).

  int NumSccs = 0;
  for (int N = 0; N < CG->size(); ++N)
    NumSccs = std::max(NumSccs, CG->sccId(N) + 1);

  // --- SCC member-set changes. A new SCC is unchanged iff its members
  // all carried one old id and that old SCC had the same size (either
  // check alone is insufficient: {1,2,3} -> {1,2}+{3} keeps 1's old id,
  // and {1,2,3} -> {1,2,4} keeps the size). Changed membership flips
  // the LAll/Cyclic dataflow terms and the §4.1.2 cycle-web seeds, so
  // all involved members — old and new — join the damage set.
  NodeSet DamageSeeds = NodeSet::withUniverse(CG->size());
  {
    std::vector<std::vector<int>> OldMembers(OldSccIds.size());
    int NumOldSccs = 0;
    for (size_t N = 0; N < OldSccIds.size(); ++N)
      NumOldSccs = std::max(NumOldSccs, OldSccIds[N] + 1);
    OldMembers.resize(NumOldSccs);
    for (size_t N = 0; N < OldSccIds.size(); ++N)
      OldMembers[OldSccIds[N]].push_back(static_cast<int>(N));

    std::vector<std::vector<int>> NewMembers(NumSccs);
    for (int N = 0; N < CG->size(); ++N)
      NewMembers[CG->sccId(N)].push_back(N);

    for (const std::vector<int> &Ms : NewMembers) {
      if (Ms.empty())
        continue;
      int OldId = OldSccIds[Ms.front()];
      bool Unchanged = OldMembers[OldId].size() == Ms.size();
      for (size_t I = 1; Unchanged && I < Ms.size(); ++I)
        Unchanged = OldSccIds[Ms[I]] == OldId;
      if (Unchanged)
        continue;
      for (int M : Ms) {
        DamageSeeds.insert(M);
        for (int O : OldMembers[OldSccIds[M]])
          DamageSeeds.insert(O);
      }
    }
  }

  // --- Adjacency damage: patched nodes plus both generations of their
  // out-neighborhoods (an old successor lost a P_REF input term even
  // when it is no longer adjacent).
  std::vector<int> RefChanged;
  for (const NodeSnapshot &S : Snaps) {
    RefChanged.push_back(S.Node);
    DamageSeeds.insert(S.Node);
    for (int O : S.Succs)
      DamageSeeds.insert(O);
    for (int O : CG->node(S.Node).Succs)
      DamageSeeds.insert(O);
  }
  std::vector<int> SeedVec(DamageSeeds.begin(), DamageSeeds.end());

  DynBitset Touched(static_cast<size_t>(RS->numEligible()));
  Delta.DamagedSccs = RS->applyDelta(RefChanged, SeedVec, Touched);
  Stats.RefSetsMs = msSince(T0);
  Stats.EligibleGlobals = RS->numEligible();
  Stats.EscapesRefuted = static_cast<int>(CG->escapesRefuted());
  Stats.IndirectCallersResolved =
      static_cast<int>(CG->indirectCallersResolved());

  // --- Node damage for web reuse (NDP): the refset seeds plus every
  // node whose invocation estimate moved (web priorities weight
  // reference frequencies by it) plus — when a patched node's leaf-ness
  // flipped — its callers (the ×2 leaf bonus and the split-web wrap
  // cost model read callee leaf-ness).
  NodeSet NDP = DamageSeeds;
  const std::vector<long long> &NewInv = CG->invocations();
  for (int N = 0; N < CG->size(); ++N)
    if (OldInv[N] != NewInv[N])
      NDP.insert(N);
  for (const NodeSnapshot &S : Snaps)
    if (S.Succs.empty() != CG->node(S.Node).Succs.empty()) {
      for (int P : S.Preds)
        NDP.insert(P);
      for (int P : CG->node(S.Node).Preds)
        NDP.insert(P);
    }

  // --- Damaged globals: touched rows, or a retained web overlapping
  // NDP (discarded webs included: their discard decision read the same
  // damaged inputs).
  std::vector<int> DamagedGids;
  if (Opts.Promotion == PromotionMode::Webs ||
      Opts.Promotion == PromotionMode::Greedy) {
    for (int G = 0; G < RS->numEligible(); ++G) {
      bool Damaged = Touched.test(static_cast<size_t>(G));
      for (int I = WebStart[G]; !Damaged && I < WebStart[G + 1]; ++I)
        if (Webs[I].Nodes.intersects(NDP))
          Damaged = true;
      if (Damaged)
        DamagedGids.push_back(G);
    }

    T0 = Clock::now();
    std::vector<std::vector<int>> SccMembers(NumSccs);
    for (int N = 0; N < CG->size(); ++N)
      SccMembers[CG->sccId(N)].push_back(N);
    WebOptions WO = webOptionsFor(Opts);
    std::vector<std::vector<Web>> NewWebs(DamagedGids.size());
    parallelForEach(DamagedGids.size(), resolveThreadCount(WO.NumThreads),
                    [&](size_t I) {
                      NewWebs[I] = websForGlobal(*CG, *RS, DamagedGids[I],
                                                 SccMembers, WO);
                    });

    // Splice: retained segments move over, damaged segments are
    // replaced, and the whole list is renumbered in global-id order —
    // the order buildWebs emits. Moves only; no web is copied.
    size_t Total = Webs.size();
    for (size_t I = 0; I < DamagedGids.size(); ++I) {
      int G = DamagedGids[I];
      Total += NewWebs[I].size() -
               static_cast<size_t>(WebStart[G + 1] - WebStart[G]);
    }
    std::vector<Web> Spliced;
    Spliced.reserve(Total);
    std::vector<int> NewStart(WebStart.size(), 0);
    size_t DI = 0;
    for (int G = 0; G < RS->numEligible(); ++G) {
      NewStart[G] = static_cast<int>(Spliced.size());
      if (DI < DamagedGids.size() && DamagedGids[DI] == G) {
        for (Web &W : NewWebs[DI])
          Spliced.push_back(std::move(W));
        ++DI;
      } else {
        for (int I = WebStart[G]; I < WebStart[G + 1]; ++I)
          Spliced.push_back(std::move(Webs[I]));
      }
    }
    NewStart[static_cast<size_t>(RS->numEligible())] =
        static_cast<int>(Spliced.size());
    Webs = std::move(Spliced);
    WebStart = std::move(NewStart);
    for (size_t I = 0; I < Webs.size(); ++I)
      Webs[I].Id = static_cast<int>(I);
    Stats.WebsMs = msSince(T0);
  } else {
    Stats.WebsMs = 0;
  }

  // Retained webs carry the previous run's coloring; finishFromWebs
  // requires the uncolored state (fresh discovery leaves -1).
  for (Web &W : Webs)
    W.AssignedReg = -1;

  Stats.TotalWebs = Stats.ConsideredWebs = Stats.ColoredWebs = 0;
  Stats.SplitWebs = Stats.RemergedWebs = 0;
  Stats.ColoringMs = Stats.ClustersMs = Stats.RegSetsMs = 0;
  Stats.NumClusters = Stats.TotalClusterNodes = Stats.MaxClusterSize = 0;

  Current = finishFromWebs(*CG, *RS, Webs, Opts, Stats);
  PrevSummaries = Summaries;

  Delta.Mode = DeltaMode::Incremental;
  Delta.ChangedProcs = static_cast<int>(Patches.size());
  Delta.DamagedGlobals = static_cast<int>(DamagedGids.size());
  return true;
}

const ProgramDatabase &
DeltaAnalyzer::analyze(const std::vector<ModuleSummary> &Summaries,
                       const AnalyzerOptions &Options,
                       const CallProfile &Profile) {
  Delta = DeltaStats();
  std::string Reason;
  if (!Primed)
    Reason = "first analysis";
  else if (!sameOptions(Opts, Options))
    Reason = "analyzer options changed";
  else if (!sameProfile(Prof, Profile))
    Reason = "profile changed";
  else if (!retainable(Reason)) {
    // Reason set by retainable().
  } else if (tryIncremental(Summaries, Profile, Reason)) {
    return Current;
  }

  Opts = Options;
  Prof = Profile;
  Delta.Mode = DeltaMode::Full;
  Delta.FallbackReason = Reason;
  Delta.ChangedProcs = 0;
  primeFull(Summaries, Profile);
  Delta.TotalGlobals = RS->numEligible();
  Delta.DamagedGlobals = Delta.TotalGlobals;
  Delta.TotalSccs = 0;
  for (int N = 0; N < CG->size(); ++N)
    Delta.TotalSccs = std::max(Delta.TotalSccs, CG->sccId(N) + 1);
  Delta.DamagedSccs = Delta.TotalSccs;
  return Current;
}
