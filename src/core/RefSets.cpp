//===- RefSets.cpp - L_REF / P_REF / C_REF dataflow -------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/RefSets.h"

#include <algorithm>

using namespace ipra;

RefSets::RefSets(const CallGraph &CG, bool ClosedWorld) : CG(CG) {
  // Eligibility (§4.1.2): fits in a register, never aliased; under a
  // partial call graph additionally module-private (§7.2).
  for (const auto &[Name, G] : CG.globals()) {
    if (!G.IsScalar || G.Aliased)
      continue;
    if (!ClosedWorld && !G.IsStatic)
      continue;
    Ids[Name] = static_cast<int>(Names.size());
    Names.push_back(Name);
  }

  size_t N = CG.size();
  size_t E = Names.size();
  LRef.assign(N, DynBitset(E));
  PRef.assign(N, DynBitset(E));
  CRef.assign(N, DynBitset(E));
  Local.assign(N, {});

  for (const CGNode &Node : CG.nodes()) {
    for (const GlobalRefSummary &R : Node.GlobalRefs) {
      auto It = Ids.find(R.QualName);
      if (It == Ids.end())
        continue;
      LRef[Node.Id].set(It->second);
      // A procedure summary may carry several records for one global;
      // fold them into one entry (the list stays short, linear scan).
      auto &Refs = Local[Node.Id];
      auto Existing = std::find_if(
          Refs.begin(), Refs.end(),
          [&It](const LocalRef &L) { return L.Id == It->second; });
      if (Existing == Refs.end())
        Refs.push_back(LocalRef{It->second, R.Freq, R.Stores});
      else {
        Existing->Freq += R.Freq;
        Existing->Stores |= R.Stores;
      }
    }
    std::sort(Local[Node.Id].begin(), Local[Node.Id].end(),
              [](const LocalRef &A, const LocalRef &B) {
                return A.Id < B.Id;
              });
  }

  if (E == 0)
    return;

  // SCC condensation sweep. Tarjan (CallGraph::computeSCC) numbers SCCs
  // in reverse topological order of the condensation: a cross-SCC edge
  // u -> v guarantees sccId(v) < sccId(u). All members of a cyclic SCC
  // (size > 1, or a self-loop) are mutual ancestors/descendants, so
  // they share one P_REF and one C_REF value which includes the union
  // of the members' own L_REF.
  int NumSccs = 0;
  for (int Node = 0; Node < CG.size(); ++Node)
    NumSccs = std::max(NumSccs, CG.sccId(Node) + 1);
  std::vector<std::vector<int>> Members(NumSccs);
  std::vector<char> Cyclic(NumSccs, 0);
  for (int Node = 0; Node < CG.size(); ++Node) {
    Members[CG.sccId(Node)].push_back(Node);
    // isRecursive covers both nontrivial SCCs and self-loops.
    if (CG.isRecursive(Node))
      Cyclic[CG.sccId(Node)] = 1;
  }

  std::vector<DynBitset> LAll(NumSccs, DynBitset(E));
  for (int Scc = 0; Scc < NumSccs; ++Scc)
    for (int Node : Members[Scc])
      LAll[Scc].unionWith(LRef[Node]);

  // P_REF: forward sweep, ancestors first (descending SCC id). The
  // incoming contribution of a cross-SCC edge p -> v is
  // P_REF[p] U L_REF[p]; intra-SCC edges are covered by LAll when the
  // SCC is cyclic and cannot exist otherwise.
  std::vector<DynBitset> SccPRef(NumSccs, DynBitset(E));
  for (int Scc = NumSccs - 1; Scc >= 0; --Scc) {
    DynBitset &In = SccPRef[Scc];
    for (int Node : Members[Scc])
      for (int P : CG.node(Node).Preds)
        if (CG.sccId(P) != Scc) {
          In.unionWith(SccPRef[CG.sccId(P)]);
          In.unionWith(LRef[P]);
        }
    if (Cyclic[Scc])
      In.unionWith(LAll[Scc]);
    for (int Node : Members[Scc])
      PRef[Node] = In;
  }

  // C_REF: backward sweep, descendants first (ascending SCC id).
  std::vector<DynBitset> SccCRef(NumSccs, DynBitset(E));
  for (int Scc = 0; Scc < NumSccs; ++Scc) {
    DynBitset &Out = SccCRef[Scc];
    for (int Node : Members[Scc])
      for (int S : CG.node(Node).Succs)
        if (CG.sccId(S) != Scc) {
          Out.unionWith(SccCRef[CG.sccId(S)]);
          Out.unionWith(LRef[S]);
        }
    if (Cyclic[Scc])
      Out.unionWith(LAll[Scc]);
    for (int Node : Members[Scc])
      CRef[Node] = Out;
  }
}

int RefSets::globalId(const std::string &QualName) const {
  auto It = Ids.find(QualName);
  return It == Ids.end() ? -1 : It->second;
}

long long RefSets::refFreq(int Node, int Id) const {
  const std::vector<LocalRef> &Refs = Local[Node];
  auto It = std::lower_bound(Refs.begin(), Refs.end(), Id,
                             [](const LocalRef &L, int Id) {
                               return L.Id < Id;
                             });
  return It != Refs.end() && It->Id == Id ? It->Freq : 0;
}

bool RefSets::refStores(int Node, int Id) const {
  const std::vector<LocalRef> &Refs = Local[Node];
  auto It = std::lower_bound(Refs.begin(), Refs.end(), Id,
                             [](const LocalRef &L, int Id) {
                               return L.Id < Id;
                             });
  return It != Refs.end() && It->Id == Id && It->Stores;
}
