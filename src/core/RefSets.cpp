//===- RefSets.cpp - L_REF / P_REF / C_REF dataflow -------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/RefSets.h"

using namespace ipra;

RefSets::RefSets(const CallGraph &CG, bool ClosedWorld) : CG(CG) {
  // Eligibility (§4.1.2): fits in a register, never aliased; under a
  // partial call graph additionally module-private (§7.2).
  for (const auto &[Name, G] : CG.globals()) {
    if (!G.IsScalar || G.Aliased)
      continue;
    if (!ClosedWorld && !G.IsStatic)
      continue;
    Ids[Name] = static_cast<int>(Names.size());
    Names.push_back(Name);
  }

  size_t N = CG.size();
  size_t E = Names.size();
  LRef.assign(N, DynBitset(E));
  PRef.assign(N, DynBitset(E));
  CRef.assign(N, DynBitset(E));
  Local.assign(N, {});

  for (const CGNode &Node : CG.nodes()) {
    for (const GlobalRefSummary &R : Node.GlobalRefs) {
      auto It = Ids.find(R.QualName);
      if (It == Ids.end())
        continue;
      LRef[Node.Id].set(It->second);
      auto &Entry = Local[Node.Id][It->second];
      Entry.first += R.Freq;
      Entry.second |= R.Stores;
    }
  }

  if (E == 0)
    return;

  // P_REF: top-down fixpoint (the paper propagates breadth-first
  // top-down for fast convergence; we iterate to the fixpoint, visiting
  // RPO order first and then any nodes unreachable from the starts).
  std::vector<int> Order = CG.rpo();
  for (int Node = 0; Node < CG.size(); ++Node)
    if (!CG.isReachable(Node))
      Order.push_back(Node);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Node : Order) {
      for (int P : CG.node(Node).Preds) {
        DynBitset In = PRef[P];
        In.unionWith(LRef[P]);
        Changed |= PRef[Node].unionWith(In);
      }
    }
  }

  // C_REF: bottom-up fixpoint.
  Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      int Node = *It;
      for (int S : CG.node(Node).Succs) {
        DynBitset In = CRef[S];
        In.unionWith(LRef[S]);
        Changed |= CRef[Node].unionWith(In);
      }
    }
  }
}

int RefSets::globalId(const std::string &QualName) const {
  auto It = Ids.find(QualName);
  return It == Ids.end() ? -1 : It->second;
}

long long RefSets::refFreq(int Node, int Id) const {
  auto It = Local[Node].find(Id);
  return It == Local[Node].end() ? 0 : It->second.first;
}

bool RefSets::refStores(int Node, int Id) const {
  auto It = Local[Node].find(Id);
  return It != Local[Node].end() && It->second.second;
}
