//===- RefSets.cpp - L_REF / P_REF / C_REF dataflow -------------------------===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//

#include "core/RefSets.h"

#include <algorithm>
#include <functional>
#include <queue>

using namespace ipra;

RefSets::RefSets(const CallGraph &CG, bool ClosedWorld) : CG(CG) {
  // Eligibility (§4.1.2): fits in a register, never aliased; under a
  // partial call graph additionally module-private (§7.2).
  for (const auto &[Name, G] : CG.globals()) {
    if (!G.IsScalar || G.Aliased)
      continue;
    if (!ClosedWorld && !G.IsStatic)
      continue;
    Ids[Name] = static_cast<int>(Names.size());
    Names.push_back(Name);
  }

  size_t N = CG.size();
  size_t E = Names.size();
  LRef.assign(N, DynBitset(E));
  PRef.assign(N, DynBitset(E));
  CRef.assign(N, DynBitset(E));
  Local.assign(N, {});

  for (const CGNode &Node : CG.nodes())
    rebuildLocalRow(Node.Id);

  if (E == 0)
    return;

  // SCC condensation sweep. Tarjan (CallGraph::computeSCC) numbers SCCs
  // in reverse topological order of the condensation: a cross-SCC edge
  // u -> v guarantees sccId(v) < sccId(u). All members of a cyclic SCC
  // (size > 1, or a self-loop) are mutual ancestors/descendants, so
  // they share one P_REF and one C_REF value which includes the union
  // of the members' own L_REF.
  int NumSccs = 0;
  for (int Node = 0; Node < CG.size(); ++Node)
    NumSccs = std::max(NumSccs, CG.sccId(Node) + 1);
  std::vector<std::vector<int>> Members(NumSccs);
  std::vector<char> Cyclic(NumSccs, 0);
  for (int Node = 0; Node < CG.size(); ++Node) {
    Members[CG.sccId(Node)].push_back(Node);
    // isRecursive covers both nontrivial SCCs and self-loops.
    if (CG.isRecursive(Node))
      Cyclic[CG.sccId(Node)] = 1;
  }

  std::vector<DynBitset> LAll(NumSccs, DynBitset(E));
  for (int Scc = 0; Scc < NumSccs; ++Scc)
    for (int Node : Members[Scc])
      LAll[Scc].unionWith(LRef[Node]);

  // P_REF: forward sweep, ancestors first (descending SCC id). The
  // incoming contribution of a cross-SCC edge p -> v is
  // P_REF[p] U L_REF[p]; intra-SCC edges are covered by LAll when the
  // SCC is cyclic and cannot exist otherwise.
  std::vector<DynBitset> SccPRef(NumSccs, DynBitset(E));
  for (int Scc = NumSccs - 1; Scc >= 0; --Scc) {
    DynBitset &In = SccPRef[Scc];
    for (int Node : Members[Scc])
      for (int P : CG.node(Node).Preds)
        if (CG.sccId(P) != Scc) {
          In.unionWith(SccPRef[CG.sccId(P)]);
          In.unionWith(LRef[P]);
        }
    if (Cyclic[Scc])
      In.unionWith(LAll[Scc]);
    for (int Node : Members[Scc])
      PRef[Node] = In;
  }

  // C_REF: backward sweep, descendants first (ascending SCC id).
  std::vector<DynBitset> SccCRef(NumSccs, DynBitset(E));
  for (int Scc = 0; Scc < NumSccs; ++Scc) {
    DynBitset &Out = SccCRef[Scc];
    for (int Node : Members[Scc])
      for (int S : CG.node(Node).Succs)
        if (CG.sccId(S) != Scc) {
          Out.unionWith(SccCRef[CG.sccId(S)]);
          Out.unionWith(LRef[S]);
        }
    if (Cyclic[Scc])
      Out.unionWith(LAll[Scc]);
    for (int Node : Members[Scc])
      CRef[Node] = Out;
  }
}

void RefSets::rebuildLocalRow(int Node) {
  LRef[Node] = DynBitset(Names.size());
  Local[Node].clear();
  for (const GlobalRefSummary &R : CG.node(Node).GlobalRefs) {
    auto It = Ids.find(R.QualName);
    if (It == Ids.end())
      continue;
    LRef[Node].set(It->second);
    // A procedure summary may carry several records for one global;
    // fold them into one entry (the list stays short, linear scan).
    auto &Refs = Local[Node];
    auto Existing =
        std::find_if(Refs.begin(), Refs.end(),
                     [&It](const LocalRef &L) { return L.Id == It->second; });
    if (Existing == Refs.end())
      Refs.push_back(LocalRef{It->second, R.Freq, R.Stores});
    else {
      Existing->Freq += R.Freq;
      Existing->Stores |= R.Stores;
    }
  }
  std::sort(Local[Node].begin(), Local[Node].end(),
            [](const LocalRef &A, const LocalRef &B) { return A.Id < B.Id; });
}

int RefSets::applyDelta(const std::vector<int> &RefChangedNodes,
                        const std::vector<int> &DamageSeedNodes,
                        DynBitset &Touched) {
  size_t E = Names.size();

  // Rebuild the local rows of re-pointed nodes, folding the L_REF
  // difference into the touched set.
  for (int Node : RefChangedNodes) {
    DynBitset Old = LRef[Node];
    rebuildLocalRow(Node);
    Old.xorWith(LRef[Node]);
    Touched.unionWith(Old);
  }
  if (E == 0)
    return 0;

  // The new condensation (the CallGraph was already re-derived).
  int NumSccs = 0;
  for (int Node = 0; Node < CG.size(); ++Node)
    NumSccs = std::max(NumSccs, CG.sccId(Node) + 1);
  std::vector<std::vector<int>> Members(NumSccs);
  std::vector<char> Cyclic(NumSccs, 0);
  for (int Node = 0; Node < CG.size(); ++Node) {
    Members[CG.sccId(Node)].push_back(Node);
    if (CG.isRecursive(Node))
      Cyclic[CG.sccId(Node)] = 1;
  }

  std::vector<char> Damaged(NumSccs, 0);

  // One directional worklist sweep. The condensation numbers SCCs in
  // reverse topological order, so a max-first pop order processes every
  // ancestor before its descendants (P_REF), and min-first the reverse
  // (C_REF); pushes always target SCCs on the far side of the current
  // pop, so each SCC is finalized exactly once per sweep. Boundary
  // inputs come from the retained per-node rows: an SCC never entering
  // the worklist has unchanged inputs by induction, so its retained
  // value equals the cold value and reading it is exact — this is what
  // makes the damage region minimal *and* the splice byte-identical.
  auto Sweep = [&](bool Forward, std::vector<DynBitset> &Rows) {
    auto Better = [Forward](int A, int B) {
      return Forward ? A < B : A > B;
    };
    std::priority_queue<int, std::vector<int>,
                        std::function<bool(int, int)>>
        Heap(Better);
    std::vector<char> Queued(NumSccs, 0);
    auto Push = [&](int Scc) {
      if (!Queued[Scc]) {
        Queued[Scc] = 1;
        Heap.push(Scc);
      }
    };
    for (int Node : DamageSeedNodes)
      Push(CG.sccId(Node));
    // A changed L_REF row feeds the *neighbor* side's input term
    // (P_REF[v] unions LRef of v's preds) even when the owner's own
    // value is unchanged, so the owner's downstream SCCs seed too.
    for (int Node : RefChangedNodes) {
      Push(CG.sccId(Node));
      const CGNode &N = CG.node(Node);
      for (int O : Forward ? N.Succs : N.Preds)
        Push(CG.sccId(O));
    }

    while (!Heap.empty()) {
      int Scc = Heap.top();
      Heap.pop();
      Damaged[Scc] = 1;
      DynBitset In(E);
      for (int Node : Members[Scc]) {
        const CGNode &N = CG.node(Node);
        for (int O : Forward ? N.Preds : N.Succs)
          if (CG.sccId(O) != Scc) {
            In.unionWith(Rows[O]);
            In.unionWith(LRef[O]);
          }
      }
      if (Cyclic[Scc])
        for (int Node : Members[Scc])
          In.unionWith(LRef[Node]);
      bool Changed = false;
      for (int Node : Members[Scc])
        if (!(Rows[Node] == In)) {
          DynBitset Diff = Rows[Node];
          Diff.xorWith(In);
          Touched.unionWith(Diff);
          Rows[Node] = In;
          Changed = true;
        }
      if (!Changed)
        continue;
      for (int Node : Members[Scc]) {
        const CGNode &N = CG.node(Node);
        for (int O : Forward ? N.Succs : N.Preds)
          if (CG.sccId(O) != Scc)
            Push(CG.sccId(O));
      }
    }
  };

  Sweep(/*Forward=*/true, PRef);
  Sweep(/*Forward=*/false, CRef);

  int Count = 0;
  for (char D : Damaged)
    Count += D;
  return Count;
}

int RefSets::globalId(const std::string &QualName) const {
  auto It = Ids.find(QualName);
  return It == Ids.end() ? -1 : It->second;
}

long long RefSets::refFreq(int Node, int Id) const {
  const std::vector<LocalRef> &Refs = Local[Node];
  auto It = std::lower_bound(Refs.begin(), Refs.end(), Id,
                             [](const LocalRef &L, int Id) {
                               return L.Id < Id;
                             });
  return It != Refs.end() && It->Id == Id ? It->Freq : 0;
}

bool RefSets::refStores(int Node, int Id) const {
  const std::vector<LocalRef> &Refs = Local[Node];
  auto It = std::lower_bound(Refs.begin(), Refs.end(), Id,
                             [](const LocalRef &L, int Id) {
                               return L.Id < Id;
                             });
  return It != Refs.end() && It->Id == Id && It->Stores;
}
