//===- WebColor.h - Web interference graph coloring ------------*- C++ -*-===//
//
// Part of the IPRA project: a reproduction of Santhanam & Odnert,
// "Register Allocation Across Procedure and Module Boundaries", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coloring of the web interference graph (§4.1.3): webs that share a
/// call-graph node interfere and must receive different callee-saves
/// registers. Three strategies from the paper's evaluation:
///
///  - K-register coloring (Table 4 column C/F): a reserved pool of
///    callee-saves registers (6 by default) is allocated to webs in
///    priority order;
///  - greedy coloring (column D): any callee-saves register may be used,
///    but never one that would cut into the callee-saves registers an
///    individual procedure itself needs;
///  - blanket promotion (column E, the [Wall 86] baseline): the hottest
///    globals each get a register dedicated across the entire program.
///
//===----------------------------------------------------------------------===//

#ifndef IPRA_CORE_WEBCOLOR_H
#define IPRA_CORE_WEBCOLOR_H

#include "core/Webs.h"
#include "target/Registers.h"

namespace ipra {

/// Coloring statistics (the §6.2 narrative numbers).
struct WebColorStats {
  int TotalWebs = 0;
  int Considered = 0;
  int Colored = 0;
};

/// Assigns registers from \p Pool to considered webs in priority order.
WebColorStats colorWebsKRegisters(std::vector<Web> &Webs,
                                  const CallGraph &CG, RegMask Pool);

/// Greedy coloring over all 16 callee-saves registers, refusing any
/// assignment that would leave a procedure with fewer callee-saves
/// registers than its own estimated need.
WebColorStats colorWebsGreedy(std::vector<Web> &Webs, const CallGraph &CG);

/// Builds blanket-promotion "webs": the \p Count highest-frequency
/// eligible globals each get one register from \p Pool, dedicated over
/// every node of the call graph; the start nodes act as web entries.
/// Returns the replacement web list (already colored).
std::vector<Web> buildBlanketWebs(const CallGraph &CG, const RefSets &RS,
                                  int Count, RegMask Pool);

/// Verification helper: interfering webs must have distinct registers;
/// every colored web's register must be callee-saves.
std::vector<std::string> checkColoring(const std::vector<Web> &Webs);

} // namespace ipra

#endif // IPRA_CORE_WEBCOLOR_H
